(* Shard router process.  See router.mli for the architecture. *)

module Telemetry = Icost_util.Telemetry
module P = Protocol

type opts = {
  socket : string;
  tcp : (string * int) option;
  shards : int;
  shard : Server.opts;
  supervise : Supervise.opts;
  failover_budget_s : float;
  handle_signals : bool;
  on_ready : (unit -> unit) option;
  on_tcp_port : (int -> unit) option;
}

let default_opts =
  {
    socket = "icostd.sock";
    tcp = None;
    shards = 2;
    shard = Server.default_opts;
    supervise = Supervise.default_opts;
    failover_budget_s = 8.;
    handle_signals = true;
    on_ready = None;
    on_tcp_port = None;
  }

type stats = { uptime_s : float; requests_total : int }

let c_respawns = Telemetry.counter "service.respawns"
let c_failovers = Telemetry.counter "service.failovers"

(* ---------- routing ---------- *)

let fnv1a64 (s : string) : int64 =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let shard_of_key ~shards key =
  if shards <= 1 then 0
  else Int64.to_int (Int64.unsigned_rem (fnv1a64 key) (Int64.of_int shards))

(* The preparation key, not the full session key: all variants/engines of
   one prepared workload share a shard (and that shard's prep cache). *)
let route_key (tg : P.target) =
  Printf.sprintf "%s|w%d|m%d" tg.workload tg.warmup tg.measure

let shard_socket public i = Printf.sprintf "%s.shard%d" public i

(* What the supervisor last told us about a shard.  [Sh_down] parks
   traffic until the respawn completes; an open breaker fails fast with a
   retry hint.  An expired breaker whose respawn has not reported [Up]
   yet behaves like [Sh_down]. *)
type shard_state = Sh_up | Sh_down | Sh_breaker of { until : float }

type t = {
  opts : opts;
  shards : int;
  started : float;
  requests : int Atomic.t;
  draining : bool Atomic.t;
  acc : Acceptor.t;
  routes : int Cache.t;
      (* frame text (minus the request id) -> destination shard, for
         frames relayed whole.  Routing is a pure function of the frame
         text, so a repeated query skips the full JSON decode — the
         dominant per-frame cost for large relayed batches. *)
  (* --- supervision --- *)
  sstate : shard_state Atomic.t array;
  up_count : int Atomic.t array;  (* [Up] events seen; first is startup *)
  drain_flag : bool Atomic.t array;  (* rolling restart is cycling this shard *)
  cmd_w : Unix.file_descr;  (* commands to the supervisor *)
  drain_lock : Mutex.t;  (* serializes rolling restarts *)
  respawns : int Atomic.t;
  failovers : int Atomic.t;
  respawn_max_ms : int Atomic.t;
  sup_gone : bool Atomic.t;
      (* the supervisor died without the [Stopped] handshake: no more
         respawns will ever happen, and the shards it owned are orphans
         the router must sweep itself at shutdown *)
}

let shard_of_op t (op : P.op) =
  let tg =
    match op with
    | P.Breakdown { target; _ } | P.Icost { target; _ }
    | P.Graph_stats { target }
    | P.Sweep { target; _ } ->
      target
    | P.Batch _ | P.Status | P.Health | P.Drain | P.Shutdown -> assert false
  in
  shard_of_key ~shards:t.shards (route_key tg)

let sleep_s s = ignore (Unix.select [] [] [] s)

let send_command_fd cmd_w cmd =
  let line = Supervise.command_to_line cmd ^ "\n" in
  let b = Bytes.of_string line in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write cmd_w b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let send_command t cmd = send_command_fd t.cmd_w cmd

(* Park until shard [sh] accepts traffic again: up and not being cycled
   by a rolling restart.  Fail-fast on an open breaker (the caller turns
   the hint into a typed [unavailable]); give up at [deadline] or once
   the router itself is draining. *)
let await_shard t sh ~deadline =
  let rec go () =
    match Atomic.get t.sstate.(sh) with
    | Sh_breaker { until } when Unix.gettimeofday () < until ->
      `Breaker
        (int_of_float (Float.ceil ((until -. Unix.gettimeofday ()) *. 1e3)))
    | Sh_up when not (Atomic.get t.drain_flag.(sh)) -> `Ready
    | _ ->
      (* no supervisor, no respawn: parking would just burn the budget *)
      if
        Atomic.get t.draining || Atomic.get t.sup_gone
        || Unix.gettimeofday () >= deadline
      then `Gave_up
      else begin
        sleep_s 0.01;
        go ()
      end
  in
  go ()

let count_failover t =
  Atomic.incr t.failovers;
  Telemetry.incr c_failovers

(* ---------- per-connection shard links ----------

   Each client connection lazily opens its own connection to each shard
   it talks to (no cross-connection multiplexing: frames of different
   clients never interleave on one shard link, so passthrough replies
   can be relayed verbatim without an id-routing table). *)

type links = Client.t option array

let drop_link (links : links) i =
  Option.iter Client.close links.(i);
  links.(i) <- None

let link t (links : links) i =
  match links.(i) with
  | Some c -> c
  | None ->
    (* short connect retry only: waiting out a respawn is the failover
       loop's job (it parks on supervisor state instead of polling a
       dead socket) *)
    let c = Client.connect ~retry_for:0.5 ~socket:(shard_socket t.opts.socket i) () in
    links.(i) <- Some c;
    c

let try_shard t links i f =
  match f (link t links i) with
  | v -> Ok v
  | exception Client.Disconnected msg ->
    drop_link links i;
    Error msg
  | exception Failure msg ->
    drop_link links i;
    Error msg

(* One transparent reconnect: the shard may have restarted between
   requests.  Only idempotent traffic flows through here (analysis ops
   and aggregation queries), so a re-send is safe. *)
let with_shard t links i f =
  match try_shard t links i f with
  | Ok v -> Ok v
  | Error _ -> try_shard t links i f

(* ---------- aggregation ---------- *)

let shard_up t i = match Atomic.get t.sstate.(i) with Sh_up -> true | _ -> false

let query_shard t links i op =
  (* a down or breaker-parked shard is unreachable by definition; asking
     would stall the aggregation behind a connect retry *)
  if not (shard_up t i) then None
  else
    match
      with_shard t links i (fun c ->
          Client.call c { P.req_id = 0; deadline_ms = None; op })
    with
    | Ok reply -> Some reply
    | Error _ -> None

let health_of t ~unreachable ~worst =
  if Atomic.get t.draining then "draining"
  else if unreachable > 0 || worst || Atomic.get t.sup_gone then "degraded"
  else "ok"

let agg_status t links : P.status_body =
  let bodies =
    List.init t.shards (fun i ->
        match query_shard t links i P.Status with
        | Some { P.body = Ok (P.R_status s); _ } -> Some s
        | _ -> None)
  in
  let reachable = List.filter_map Fun.id bodies in
  let unreachable = t.shards - List.length reachable in
  let sum f = List.fold_left (fun a s -> a + f s) 0 reachable in
  let worst =
    List.exists (fun (s : P.status_body) -> s.P.health <> "ok") reachable
  in
  {
    P.uptime_s = Unix.gettimeofday () -. t.started;
    requests_total = Atomic.get t.requests;
    inflight = sum (fun s -> s.P.inflight);
    queue_depth = sum (fun s -> s.P.queue_depth);
    sessions = sum (fun s -> s.P.sessions);
    cache_hits = sum (fun s -> s.P.cache_hits);
    cache_misses = sum (fun s -> s.P.cache_misses);
    cache_evictions = sum (fun s -> s.P.cache_evictions);
    snapshot_hits = sum (fun s -> s.P.snapshot_hits);
    snapshot_misses = sum (fun s -> s.P.snapshot_misses);
    snapshot_rejects = sum (fun s -> s.P.snapshot_rejects);
    sweep_points = sum (fun s -> s.P.sweep_points);
    sweep_cache_hits = sum (fun s -> s.P.sweep_cache_hits);
    segments = sum (fun s -> s.P.segments);
    stream_peak_mb =
      List.fold_left
        (fun a (s : P.status_body) -> Float.max a s.P.stream_peak_mb)
        0. reachable;
    pool_jobs = sum (fun s -> s.P.pool_jobs);
    shards = t.shards;
    respawns = Atomic.get t.respawns;
    failovers = Atomic.get t.failovers;
    health = health_of t ~unreachable ~worst;
    draining = Atomic.get t.draining;
  }

let agg_health t links : P.health_body =
  let bodies =
    List.init t.shards (fun i ->
        match query_shard t links i P.Health with
        | Some { P.body = Ok (P.R_health h); _ } -> Some h
        | _ -> None)
  in
  let reachable = List.filter_map Fun.id bodies in
  let unreachable = t.shards - List.length reachable in
  let sum f = List.fold_left (fun a h -> a + f h) 0 reachable in
  let worst =
    List.exists (fun (h : P.health_body) -> h.P.h_health <> "ok") reachable
  in
  {
    P.h_health = health_of t ~unreachable ~worst;
    h_breakers_open = sum (fun h -> h.P.h_breakers_open);
    h_shed = sum (fun h -> h.P.h_shed);
  }

(* ---------- dispatch ---------- *)

let write_reply c ~seq (reply : P.reply) =
  Acceptor.write_line c ~seq (P.encode_reply reply ^ "\n")

let error_reply id code msg = { P.rep_id = id; body = Error (code, msg) }

let unreachable_error i msg =
  (P.Unavailable, Printf.sprintf "shard %d unreachable: %s" i msg)

let breaker_error sh retry_after_ms =
  ( P.Unavailable,
    Printf.sprintf "shard %d breaker open after restart storm; %s" sh
      (P.retry_after_clause retry_after_ms) )

let write_breaker_reply c ~seq ~id sh retry_after_ms =
  let code, msg = breaker_error sh retry_after_ms in
  Acceptor.write_line c ~seq
    (P.encode_error_reply ~rep_id:id code msg ~retry_after_ms ^ "\n")

let has_substring line needle =
  let n = String.length line and m = String.length needle in
  let i = ref 0 and found = ref false in
  while (not !found) && !i + m <= n do
    let j = ref 0 in
    while !j < m && line.[!i + !j] = needle.[!j] do
      incr j
    done;
    if !j = m then found := true else incr i
  done;
  !found

(* A relayed frame only comes back [shutting_down] when the shard itself
   is draining — and a shard drains for exactly two reasons: the whole
   service is going down (don't retry), or the supervisor is cycling it
   and a replacement is seconds away (park and re-deliver).  Detected
   textually: the reply is relayed verbatim, never decoded. *)
let is_shutting_down_line line = has_substring line "\"code\":\"shutting_down\""

(* Forward one frame verbatim to shard [sh] and relay the shard's reply
   line untouched — byte-identical to asking the shard directly.  A dead,
   restarting or draining shard does not fail the frame: the loop parks
   on supervisor state and re-delivers to the respawned shard within the
   failover budget (frames on this path are idempotent by construction),
   so a crash or rolling restart costs latency, not an error. *)
let forward_to t links c ~seq ~id ~sh line =
  let deadline = Unix.gettimeofday () +. t.opts.failover_budget_s in
  let rec attempt ~failing_over =
    match await_shard t sh ~deadline with
    | `Breaker retry_after_ms -> write_breaker_reply c ~seq ~id sh retry_after_ms
    | `Ready | `Gave_up -> (
      match
        try_shard t links sh (fun sc ->
            Client.send_line sc line;
            Client.recv_line sc)
      with
      | Ok reply_line
        when is_shutting_down_line reply_line
             && (not (Atomic.get t.draining))
             && Unix.gettimeofday () < deadline ->
        drop_link links sh;
        sleep_s 0.02;
        attempt ~failing_over:true
      | Ok reply_line ->
        if failing_over then count_failover t;
        Acceptor.write_line c ~seq (reply_line ^ "\n")
      | Error msg ->
        if
          (not (Atomic.get t.draining))
          && (not (Atomic.get t.sup_gone))
          && Unix.gettimeofday () < deadline
        then begin
          sleep_s 0.02;
          attempt ~failing_over:true
        end
        else begin
          let code, emsg = unreachable_error sh msg in
          write_reply c ~seq (error_reply id code emsg)
        end)
  in
  attempt ~failing_over:false

let forward_single t links c ~seq ~id ~line op =
  forward_to t links c ~seq ~id ~sh:(shard_of_op t op) line

(* Affinity fast path: a batch whose items are all analysis ops bound
   for the same shard can be relayed verbatim like a single frame — the
   shard executes the whole batch in one scheduler slot and its reply
   needs no stitching.  This skips the scatter-gather's decode and
   re-encode of every per-item result (the expensive half: replies are
   an order of magnitude larger than requests), so clients that group
   their queries by workload — the natural pattern, since all sessions
   of one workload live on one shard — pay router overhead per frame,
   not per item. *)
let single_shard_batch t (ops : P.op list) : int option =
  let rec go acc = function
    | [] -> acc
    | (P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _) as op :: rest -> (
      let sh = shard_of_op t op in
      match acc with
      | None -> go (Some sh) rest
      | Some sh' when sh' = sh -> go acc rest
      | Some _ -> raise Exit)
    (* status/health need aggregation, shutdown/drain/batch per-item
       errors: the slow path answers those without involving a shard *)
    | (P.Status | P.Health | P.Drain | P.Shutdown | P.Batch _) :: _ -> raise Exit
  in
  try go None ops with Exit -> None

(* Scatter-gather: partition items by shard (preserving order inside each
   group), send every sub-batch before reading any reply, then stitch the
   per-item results back into the frame's original item order.  Items the
   router can answer itself (status/health, nested batch, drain,
   shutdown) never leave the process.

   Failure semantics per sub-batch: a shard being cycled by a rolling
   restart ([drain_flag]) is waited out and its sub-batch re-delivered to
   the replacement — a drain must cost zero failed requests.  An
   {e uncommanded} crash between send and reply instead degrades to
   per-item typed [unavailable] errors: the frame as a whole survives,
   the client retries just those items (or the frame — it is idempotent)
   against the respawned shard. *)
let handle_batch t links ~deadline_ms ~id (ops : P.op list) : P.result_body =
  let n = List.length ops in
  let slots = Array.make n (Error (P.Internal, "unrouted batch item")) in
  let by_shard = Hashtbl.create 4 in
  List.iteri
    (fun idx op ->
      match op with
      | P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _ ->
        let sh = shard_of_op t op in
        let prev = try Hashtbl.find by_shard sh with Not_found -> [] in
        Hashtbl.replace by_shard sh ((idx, op) :: prev)
      | P.Status -> slots.(idx) <- Ok (P.R_status (agg_status t links))
      | P.Health -> slots.(idx) <- Ok (P.R_health (agg_health t links))
      | P.Drain ->
        slots.(idx) <- Error (P.Bad_request, "drain is not allowed inside a batch")
      | P.Shutdown ->
        slots.(idx) <- Error (P.Bad_request, "shutdown is not allowed inside a batch")
      | P.Batch _ -> slots.(idx) <- Error (P.Bad_request, "batch items cannot nest"))
    ops;
  let groups =
    Hashtbl.fold (fun sh items acc -> (sh, List.rev items) :: acc) by_shard []
    |> List.sort compare
  in
  let deadline = Unix.gettimeofday () +. t.opts.failover_budget_s in
  let sub_of items =
    { P.req_id = id; deadline_ms; op = P.Batch { ops = List.map snd items } }
  in
  (* scatter: the shards compute their sub-batches concurrently.  A shard
     with an open breaker is refused up front (fail-fast, with the retry
     hint in each item's message). *)
  let sent =
    List.map
      (fun (sh, items) ->
        match await_shard t sh ~deadline with
        | `Breaker retry_after_ms ->
          (sh, items, `Refused (breaker_error sh retry_after_ms))
        | `Ready | `Gave_up ->
          (sh, items, `Sent (with_shard t links sh (fun sc -> Client.send sc (sub_of items)))))
      groups
  in
  (* one full re-delivery of a sub-batch to a respawned shard *)
  let redeliver sh items fill =
    match await_shard t sh ~deadline with
    | `Breaker retry_after_ms -> fill (breaker_error sh retry_after_ms)
    | `Ready | `Gave_up -> (
      match with_shard t links sh (fun sc -> Client.call sc (sub_of items)) with
      | Ok { P.body = Ok (P.R_batch { results }); _ }
        when List.length results = List.length items ->
        count_failover t;
        List.iter2 (fun (idx, _) r -> slots.(idx) <- r) items results
      | Ok { P.body = Error (code, msg); _ } -> fill (code, msg)
      | Ok _ -> fill (P.Internal, Printf.sprintf "shard %d: malformed batch reply" sh)
      | Error msg -> fill (unreachable_error sh msg))
  in
  List.iter
    (fun (sh, items, sent_ok) ->
      let fill err = List.iter (fun (idx, _) -> slots.(idx) <- Error err) items in
      (* A sub-batch lost to a {e commanded} drain (rolling restart) is
         re-delivered to the replacement — a drain must cost zero failed
         requests.  One lost to an uncommanded crash instead degrades to
         per-item typed errors, deterministically: the client retries
         those items against the respawned shard. *)
      let failover_or fill_err =
        if Atomic.get t.drain_flag.(sh) && not (Atomic.get t.draining) then
          redeliver sh items fill
        else fill fill_err
      in
      match sent_ok with
      | `Refused err -> fill err
      | `Sent (Error msg) -> failover_or (unreachable_error sh msg)
      | `Sent (Ok ()) -> (
        let recv () =
          match links.(sh) with
          | Some sc -> Client.recv sc
          | None -> raise (Client.Disconnected "shard link lost")
        in
        match recv () with
        | { P.body = Ok (P.R_batch { results }); _ }
          when List.length results = List.length items ->
          List.iter2 (fun (idx, _) r -> slots.(idx) <- r) items results
        | { P.body = Error (P.Shutting_down, _); _ }
          when not (Atomic.get t.draining) ->
          (* the shard is draining for a restart, not the service: wait
             for the replacement and re-deliver *)
          drop_link links sh;
          redeliver sh items fill
        | { P.body = Error (code, msg); _ } ->
          (* whole sub-batch refused (overloaded / draining / breaker):
             every item of this shard inherits the typed error *)
          fill (code, msg)
        | _ -> fill (P.Internal, Printf.sprintf "shard %d: malformed batch reply" sh)
        | exception Client.Disconnected msg ->
          drop_link links sh;
          failover_or (unreachable_error sh msg)
        | exception Failure msg ->
          drop_link links sh;
          failover_or (unreachable_error sh msg)))
    sent;
  P.R_batch { results = Array.to_list slots }

(* ---------- rolling restart ---------- *)

(* Cycle the fleet one shard at a time: park the shard's traffic, ask the
   supervisor to drain it (the shard finishes in-flight work, persists
   its snapshots and exits; the supervisor respawns it immediately), wait
   for the replacement to come up, unpark, move on.  Requests bound for
   the cycling shard meanwhile wait in {!forward_to}/{!handle_batch}
   rather than failing, so a rolling restart is invisible to clients
   beyond latency. *)
let rolling_restart t : (int, P.error_code * string) result =
  if Atomic.get t.sup_gone then
    Error
      ( P.Unavailable,
        "rolling restart refused: the supervisor process is gone, nothing \
         can respawn a drained shard" )
  else if not (Mutex.try_lock t.drain_lock) then
    Error (P.Unavailable, "a rolling restart is already in progress")
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.drain_lock)
      (fun () ->
        let failed = ref None in
        let restarted = ref 0 in
        for sh = 0 to t.shards - 1 do
          if !failed = None && not (Atomic.get t.draining) then begin
            let ups_before = Atomic.get t.up_count.(sh) in
            Atomic.set t.drain_flag.(sh) true;
            send_command t (Supervise.Drain sh);
            let deadline =
              Unix.gettimeofday () +. t.opts.supervise.Supervise.spawn_wait_s
              +. 30.
            in
            let rec wait () =
              if Atomic.get t.up_count.(sh) > ups_before && shard_up t sh then
                incr restarted
              else if
                Unix.gettimeofday () >= deadline || Atomic.get t.draining
              then failed := Some sh
              else begin
                sleep_s 0.02;
                wait ()
              end
            in
            wait ();
            Atomic.set t.drain_flag.(sh) false
          end
        done;
        match !failed with
        | None -> Ok !restarted
        | Some sh ->
          Error
            ( P.Internal,
              Printf.sprintf
                "rolling restart aborted: shard %d did not respawn (restarted %d)"
                sh !restarted ))

(* ---------- route cache ----------

   A frame the router relays verbatim (one analysis op, or a batch whose
   items all land on one shard) is routed by a pure function of its
   text, so the decision is memoized on the frame text minus its request
   id (see {!P.split_frame_id}). *)

exception Unrouted
(* the frame needs the aggregating/stitching slow path (status, health,
   drain, shutdown, mixed-shard or malformed batches) and must not be
   cached *)

let route_decision t line : int =
  match P.decode_request line with
  | Error _ -> raise Unrouted
  | Ok req -> (
    match req.P.op with
    | (P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _) as op ->
      shard_of_op t op
    | P.Batch { ops } -> (
      match single_shard_batch t ops with
      | Some sh -> sh
      | None -> raise Unrouted)
    | P.Status | P.Health | P.Drain | P.Shutdown -> raise Unrouted)

let handle_decoded t links c ~seq line =
  match P.decode_request line with
  | Error msg -> write_reply c ~seq (error_reply 0 P.Bad_request msg)
  | Ok req -> (
    let id = req.P.req_id in
    match req.P.op with
    | P.Status ->
      write_reply c ~seq { P.rep_id = id; body = Ok (P.R_status (agg_status t links)) }
    | P.Health ->
      write_reply c ~seq { P.rep_id = id; body = Ok (P.R_health (agg_health t links)) }
    | P.Shutdown ->
      write_reply c ~seq { P.rep_id = id; body = Ok P.R_shutdown };
      Atomic.set t.draining true;
      Acceptor.request_stop t.acc
    | _ when Atomic.get t.draining ->
      write_reply c ~seq (error_reply id P.Shutting_down "server is draining")
    | P.Drain -> (
      match rolling_restart t with
      | Ok restarted ->
        write_reply c ~seq { P.rep_id = id; body = Ok (P.R_drain { restarted }) }
      | Error (code, msg) -> write_reply c ~seq (error_reply id code msg))
    | P.Batch { ops } -> (
      match single_shard_batch t ops with
      | Some sh -> forward_to t links c ~seq ~id ~sh line
      | None ->
        let body =
          handle_batch t links ~deadline_ms:req.P.deadline_ms ~id ops
        in
        write_reply c ~seq { P.rep_id = id; body = Ok body })
    | (P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _) as op ->
      forward_single t links c ~seq ~id ~line op)

let handle_line t links c ~seq line =
  Atomic.incr t.requests;
  (* draining must answer analysis frames with [Shutting_down], so the
     relay fast path only runs while accepting work *)
  if Atomic.get t.draining then handle_decoded t links c ~seq line
  else
    match P.split_frame_id line with
    | None -> handle_decoded t links c ~seq line
    | Some (id, pos) -> (
      let key = String.sub line pos (String.length line - pos) in
      match Cache.find_or_add t.routes key (fun () -> route_decision t line) with
      | sh -> forward_to t links c ~seq ~id ~sh line
      | exception Unrouted -> handle_decoded t links c ~seq line)

let conn_loop t (c : Acceptor.conn) =
  let links : links = Array.make t.shards None in
  let rec loop () =
    match Acceptor.read_line_bounded c ~max:P.max_request_bytes with
    | `Eof -> ()
    | `Too_long ->
      write_reply c ~seq:(Acceptor.next_seq c)
        (error_reply 0 P.Bad_request
           (Printf.sprintf "request exceeds %d bytes" P.max_request_bytes))
    | `Line line ->
      if String.trim line <> "" then
        handle_line t links c ~seq:(Acceptor.next_seq c) line;
      loop ()
  in
  (try loop () with _ -> ());
  Array.iteri (fun i _ -> drop_link links i) links

(* ---------- lifecycle ---------- *)

let rec mkdirs dir =
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Fork one shard server.  Runs inside the supervisor process (which is
   single-threaded for its whole life, so forking is always safe there);
   [close_in_child] are the supervisor's pipe ends, which the shard must
   not hold open or the router would never see EOF when the supervisor
   dies.  Shards always handle SIGTERM themselves: the supervisor's stop
   path terminates the fleet with signals, and graceful handling is what
   unlinks the shard's socket file on the way out. *)
let spawn_shard (opts : opts) ~close_in_child i =
  let sock = shard_socket opts.socket i in
  let cache_dir =
    Option.map
      (fun root -> Filename.concat root (Printf.sprintf "shard-%d" i))
      opts.shard.Server.cache_dir
  in
  Option.iter mkdirs cache_dir;
  match Unix.fork () with
  | 0 ->
    (* child: a full private server; never returns to the caller's code *)
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      close_in_child;
    let sopts =
      {
        opts.shard with
        Server.socket = sock;
        tcp = None;
        cache_dir;
        handle_signals = true;
        on_ready = None;
        on_tcp_port = None;
      }
    in
    let code = match Server.run sopts with _ -> 0 | exception _ -> 1 in
    Unix._exit code
  | pid -> pid

(* the public, escalating reap (see router.mli); shutdown uses it on the
   supervisor, tests use it on daemon processes *)
let reap ?grace_s pids = Supervise.reap ?grace_s pids

let take_line buf =
  let s = Buffer.contents buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear buf;
    Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
    Some (String.sub s 0 i)

let run (opts : opts) : stats =
  if opts.shards < 1 then invalid_arg "Router.run: shards must be >= 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Fork the supervisor before any listener or thread exists in this
     process — fork and threads do not mix, and every later fork (the
     respawns) happens inside the still-single-threaded supervisor. *)
  let cmd_r, cmd_w = Unix.pipe () in
  let evt_r, evt_w = Unix.pipe () in
  let sup_pid =
    match Unix.fork () with
    | 0 -> (
      (try Unix.close cmd_w with Unix.Unix_error _ -> ());
      (try Unix.close evt_r with Unix.Unix_error _ -> ());
      try
        Supervise.run_supervisor opts.supervise ~shards:opts.shards
          ~spawn:(spawn_shard opts ~close_in_child:[ cmd_r; evt_w ])
          ~socket_of:(shard_socket opts.socket)
          ~cmd:cmd_r ~evt:evt_w ~handle_signals:opts.handle_signals
      with _ -> Unix._exit 1)
    | pid -> pid
  in
  (try Unix.close cmd_r with Unix.Unix_error _ -> ());
  (try Unix.close evt_w with Unix.Unix_error _ -> ());
  let sstate = Array.init opts.shards (fun _ -> Atomic.make Sh_down) in
  let up_count = Array.init opts.shards (fun _ -> Atomic.make 0) in
  let respawns = Atomic.make 0 in
  let failovers = Atomic.make 0 in
  let respawn_max_ms = Atomic.make 0 in
  let sup_stopped = Atomic.make false in
  let sup_gone = Atomic.make false in
  let apply_event = function
    | Supervise.Stopped -> Atomic.set sup_stopped true
    | Supervise.Up { shard; latency_ms; _ } when shard >= 0 && shard < opts.shards
      ->
      let seen = Atomic.fetch_and_add up_count.(shard) 1 in
      if seen > 0 then begin
        (* not the initial startup: a real respawn *)
        Atomic.incr respawns;
        Telemetry.incr c_respawns;
        let rec bump () =
          let cur = Atomic.get respawn_max_ms in
          if
            latency_ms > cur
            && not (Atomic.compare_and_set respawn_max_ms cur latency_ms)
          then bump ()
        in
        bump ()
      end;
      Atomic.set sstate.(shard) Sh_up
    | Supervise.Down { shard; _ } when shard >= 0 && shard < opts.shards ->
      Atomic.set sstate.(shard) Sh_down
    | Supervise.Breaker_open { shard; retry_after_ms }
      when shard >= 0 && shard < opts.shards ->
      Atomic.set sstate.(shard)
        (Sh_breaker
           {
             until = Unix.gettimeofday () +. (float_of_int retry_after_ms /. 1e3);
           })
    | Supervise.Up _ | Supervise.Down _ | Supervise.Breaker_open _ -> ()
  in
  let ebuf = Buffer.create 256 in
  let read_evt_chunk ~timeout =
    match Unix.select [ evt_r ] [] [] timeout with
    | [ _ ], _, _ -> (
      let chunk = Bytes.create 512 in
      match Unix.read evt_r chunk 0 (Bytes.length chunk) with
      | 0 -> `Eof
      | n ->
        Buffer.add_subbytes ebuf chunk 0 n;
        `Data
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Timeout
      | exception Unix.Unix_error _ -> `Eof)
    | _ -> `Timeout
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Timeout
  in
  let teardown e =
    send_command_fd cmd_w Supervise.Stop;
    Supervise.reap ~grace_s:opts.supervise.Supervise.grace_s [ sup_pid ];
    (try Unix.close cmd_w with Unix.Unix_error _ -> ());
    (try Unix.close evt_r with Unix.Unix_error _ -> ());
    raise e
  in
  (* readiness: the supervisor reports [Up] per shard as each socket
     starts accepting; consume events on this (still threadless) thread
     until the whole fleet is up *)
  let ready_deadline =
    Unix.gettimeofday () +. 30. +. opts.supervise.Supervise.spawn_wait_s
  in
  let all_up () =
    Array.for_all (fun a -> Atomic.get a = Sh_up) sstate
  in
  (try
     let rec wait_ready () =
       if all_up () then ()
       else
         match take_line ebuf with
         | Some line ->
           Option.iter apply_event (Supervise.event_of_line line);
           wait_ready ()
         | None ->
           if Unix.gettimeofday () >= ready_deadline then
             failwith "shards failed to start"
           else (
             match read_evt_chunk ~timeout:0.25 with
             | `Data | `Timeout -> wait_ready ()
             | `Eof -> failwith "supervisor exited during startup")
     in
     wait_ready ()
   with e -> teardown e);
  let listeners =
    try
      let unix_listener = Endpoint.listen (Endpoint.Unix_path opts.socket) in
      match opts.tcp with
      | None -> [ unix_listener ]
      | Some (host, port) -> (
        match Endpoint.listen (Endpoint.Tcp (host, port)) with
        | l ->
          Option.iter
            (fun f -> Option.iter f (Endpoint.bound_port l))
            opts.on_tcp_port;
          [ unix_listener; l ]
        | exception e ->
          Endpoint.close_listener unix_listener;
          raise e)
    with e -> teardown e
  in
  let t =
    {
      opts;
      shards = opts.shards;
      started = Unix.gettimeofday ();
      requests = Atomic.make 0;
      draining = Atomic.make false;
      acc = Acceptor.create listeners;
      routes = Cache.create ~name:"routes" ~cap:256;
      sstate;
      up_count;
      drain_flag = Array.init opts.shards (fun _ -> Atomic.make false);
      cmd_w;
      drain_lock = Mutex.create ();
      respawns;
      failovers;
      respawn_max_ms;
      sup_gone;
    }
  in
  (* from here on the supervisor's events are consumed by a dedicated
     thread (EOF — the supervisor exiting — ends it) *)
  let evt_thread =
    Thread.create
      (fun () ->
        let rec loop () =
          match take_line ebuf with
          | Some line ->
            Option.iter apply_event (Supervise.event_of_line line);
            loop ()
          | None -> (
            match read_evt_chunk ~timeout:0.5 with
            | `Data | `Timeout -> loop ()
            | `Eof ->
              (* pipe EOF before the [Stopped] handshake means the
                 supervisor itself died — it never exits on its own.
                 The fleet keeps serving, but health degrades (self-
                 healing is lost) and shutdown must sweep the orphans. *)
              if not (Atomic.get sup_stopped) then Atomic.set sup_gone true)
        in
        loop ())
      ()
  in
  if opts.handle_signals then begin
    let h =
      Sys.Signal_handle
        (fun _ ->
          Atomic.set t.draining true;
          Acceptor.request_stop t.acc)
    in
    (try Sys.set_signal Sys.sigint h with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm h with Invalid_argument _ -> ())
  end;
  Option.iter (fun f -> f ()) opts.on_ready;
  Acceptor.serve t.acc ~on_conn:(conn_loop t);
  Atomic.set t.draining true;
  (* stop-the-fleet: the supervisor SIGTERMs the shards (graceful drain:
     they finish in-flight work, persist snapshots, unlink sockets),
     escalates to SIGKILL on a wedged one, reaps them all and exits;
     EOF on the event pipe then ends the reader thread. *)
  send_command t Supervise.Stop;
  Acceptor.finish t.acc;
  Supervise.reap ~grace_s:(3. *. opts.supervise.Supervise.grace_s) [ sup_pid ];
  Thread.join evt_thread;
  (* If the supervisor was killed out from under us (no [Stopped]
     handshake), the shards it forked were re-parented to init when it
     died: nobody is left to signal or reap them, and they would leak
     past our own exit still holding their sockets.  They are not our
     children, so the sweep goes over the wire instead of via signals:
     a live shard answers [shutdown] by draining, persisting its
     snapshots, unlinking its socket and exiting on its own. *)
  if not (Atomic.get sup_stopped) then
    for i = 0 to opts.shards - 1 do
      let sock = shard_socket opts.socket i in
      match Endpoint.probe_unix_socket sock with
      | `Live -> (
        try
          let c = Client.connect ~retry_for:0.5 ~socket:sock () in
          Fun.protect
            ~finally:(fun () -> try Client.close c with _ -> ())
            (fun () ->
              ignore
                (Client.call c
                   { P.req_id = 0; deadline_ms = None; op = P.Shutdown }))
        with _ -> ())
      | `Absent | `Stale -> ()
    done;
  (try Unix.close cmd_w with Unix.Unix_error _ -> ());
  (try Unix.close evt_r with Unix.Unix_error _ -> ());
  { uptime_s = Unix.gettimeofday () -. t.started;
    requests_total = Atomic.get t.requests }
