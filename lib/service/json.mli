(** Minimal JSON values for the service wire protocol.

    The repository emits JSON in several places ({!Icost_report}) but the
    service is the first component that must also {e read} it, so this
    module carries both directions.  The subset implemented — objects,
    arrays, strings, integers, floats, booleans, null — is exactly what
    [icost.rpc.v1] uses; anything beyond it (comments, NaN, duplicate-key
    semantics) is rejected.

    Floats are printed with ["%.17g"], enough digits to round-trip every
    IEEE-754 double bit-identically through [float_of_string] — the
    protocol's reproducibility guarantee (a served answer equals the
    one-shot CLI answer to the last bit) rests on this. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Parse one JSON document (trailing whitespace allowed, trailing garbage
    is not).  Numbers that overflow to a non-finite double (["1e309"], an
    integer literal wider than the double mantissa can absorb finitely)
    are rejected: every value [parse] admits, [encode] can print.
    @raise Parse_error with a position-stamped message. *)

val encode : t -> string
(** One-line rendering (no newlines; strings escaped per RFC 8259).
    @raise Invalid_argument on a non-finite [Float] — such a value cannot
    be represented in JSON, and [parse] never constructs one. *)

(** {1 Accessors} — all total, returning [None] on a shape mismatch.
    [get_float] promotes [Int]; nothing else coerces. *)

val member : string -> t -> t option
(** First binding of the key in an object; [None] for non-objects. *)

val get_int : t -> int option
val get_float : t -> float option
val get_str : t -> string option
val get_bool : t -> bool option
val get_arr : t -> t list option
