(** Sweepable machine parameters.

    The interaction-cost analyses answer "what if this resource were
    {e ideal}?"; the sensitivity engine ({!Sweep}) asks the complementary
    question "how much of this resource is {e enough}?" by evaluating a
    grid of concrete provisionings.  This module is the registry of
    parameters a sweep may vary: each entry knows how to read and write
    its field of {!Icost_uarch.Config.t}, which direction counts as
    {e relaxation} (more entries for a window, {e fewer} cycles for a
    latency), and its lower bound.

    Only non-structural parameters are sweepable on purpose: event
    annotation depends solely on the structural configuration (cache and
    predictor geometry), so one {!Icost_experiments.Runner.prepared}
    execution is reusable across every point of every axis here — the
    property the whole sweep engine (and the service's prep cache) leans
    on.  Cache {e sizes}, TLBs and predictor tables are therefore absent;
    cache {e latencies} are present. *)

module Config = Icost_uarch.Config

(** Which way relaxation points.  Cycles are expected to be monotone
    non-increasing as the parameter moves in this direction (the
    [sweep-relax-monotone] conformance law). *)
type direction = More_is_better | Less_is_better

type t = {
  p_name : string;  (** CLI/wire name, e.g. ["window"] *)
  p_doc : string;
  p_unit : string;  (** e.g. ["entries"], ["cycles"], ["instrs/cycle"] *)
  p_dir : direction;
  p_min : int;  (** smallest legal value *)
  p_get : Config.t -> int;
  p_apply : Config.t -> int -> Config.t;
      (** functional update; returns the config {e physically unchanged}
          when the value already matches, so the baseline point of every
          axis shares one config (and one digest, one cache entry) *)
}

val all : t list
val names : string list
val find : string -> t option

val find_exn : string -> t
(** @raise Invalid_argument for unknown names (the message lists the
    known ones). *)

(** One sweep axis: a parameter and the grid values to evaluate
    (ascending, deduplicated, all [>= p_min]).  Built by {!axis} or
    {!parse_axis} — not by hand — so the invariants hold. *)
type axis = private { ax_param : t; ax_values : int list }

val max_points_per_axis : int
(** 64 — an axis requesting more grid points is rejected at parse time
    (each point is a full baseline re-simulation). *)

val axis : t -> int list -> axis
(** @raise Invalid_argument on an empty list, a value below [p_min], or
    more than {!max_points_per_axis} values. *)

val parse_axis : string -> (axis, string) result
(** Grid-spec grammar (the [--param] flag and the service [sweep] op):

    {v spec ::= NAME "=" LO ".." HI            geometric: LO, 2*LO, ... , HI
       | NAME "=" LO ".." HI ":" STEP   arithmetic: LO, LO+STEP, ..., HI v}

    [HI] is always included.  Values, not the baseline, define the grid;
    {!Sweep.run} inserts the session config's own value as an extra point
    so every curve contains its baseline. *)

val parse_axes : string list -> (axis list, string) result
(** All-or-nothing {!parse_axis} over a spec list; also rejects an empty
    list and duplicate parameter names. *)

val axis_to_string : axis -> string
(** Canonical spec-like rendering, ["window=16,32,64"] (explicit values —
    round-tripping the original spec text is not attempted). *)
