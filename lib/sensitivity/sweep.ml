(* Sweep planner and evaluator.  See the .mli for the analysis story; the
   implementation notes here are about determinism and sharing:

   - the job list (distinct configs over all axes) is built in a fixed
     order — axes in request order, values ascending, first occurrence
     wins — so fault-injection schedules and sequential runs are
     reproducible, and parallel evaluation returns results positionally
     (Pool.parallel_map is deterministic by construction);
   - deduplication keys on the marshalled-config digest, the same key
     shape the server's sweep-point cache uses, so "two axes sharing
     their baseline point" and "two requests sharing a point" are the
     same mechanism;
   - per-point supervision catches *inside* the pool job: the pool
     propagates the smallest-index exception, which would turn one bad
     point into a whole-sweep failure. *)

module Config = Icost_uarch.Config
module Runner = Icost_experiments.Runner
module Graph = Icost_depgraph.Graph
module Advisor = Icost_core.Advisor
module Texport = Icost_report.Telemetry_export
module Telemetry = Icost_util.Telemetry
module Pool = Icost_util.Pool
module Fault = Icost_util.Fault

type engine = Sim | Graph_cp

let engine_of_string = function
  | "multisim" -> Ok Sim
  | "graph" | "fullgraph" -> Ok Graph_cp
  | "profiler" -> Error "the profiler engine cannot price swept configs"
  | s -> Error (Printf.sprintf "unknown sweep engine %S" s)

let engine_name = function Sim -> "multisim" | Graph_cp -> "graph"

let eval_point ~engine ~cfg ~prepared =
  let r = Runner.baseline_run cfg prepared in
  match engine with
  | Sim -> float_of_int r.Icost_sim.Ooo.cycles
  | Graph_cp ->
    let g = Runner.graph_of ~baseline:r cfg prepared in
    float_of_int (Graph.critical_length g)

type point = {
  pt_value : int;
  pt_cached : bool;
  pt_outcome : (float, exn) result;
}

type knee = { kn_value : int; kn_marginal : float; kn_saturated : bool }

type curve = {
  cv_param : Param.t;
  cv_base_value : int;
  cv_points : point list;
  cv_deltas : (int * float) list;
  cv_knee : knee option;
}

type result = {
  sw_engine : engine;
  sw_baseline : float;
  sw_points : int;
  sw_cache_hits : int;
  sw_curves : curve list;
}

let default_knee_frac = 0.05

let c_points = Telemetry.counter "sweep.points"
let c_cache_hits = Telemetry.counter "sweep.cache_hits"
let fp_point = Fault.point "sweep_point"

(* First differences along ascending values, over evaluated points only;
   attributed to the upper value of each step. *)
let deltas_of points =
  let ok =
    List.filter_map
      (fun pt ->
        match pt.pt_outcome with
        | Ok c -> Some (pt.pt_value, c)
        | Error _ -> None)
      points
  in
  let rec go acc = function
    | (v1, c1) :: ((v2, c2) :: _ as tl) ->
      go ((v2, (c2 -. c1) /. float_of_int (v2 - v1)) :: acc) tl
    | _ -> List.rev acc
  in
  go [] ok

(* Walk the curve in relaxation order; each step's marginal benefit is
   cycles saved per unit of resource.  The knee is the first step whose
   marginal drops below knee_frac of the axis' best marginal; a flat
   axis knees immediately, an axis still paying off at the grid edge
   reports the edge unsaturated. *)
let knee_of ~knee_frac (p : Param.t) points =
  let ok =
    List.filter_map
      (fun pt ->
        match pt.pt_outcome with Ok c -> Some (pt.pt_value, c) | Error _ -> None)
      points
  in
  let ordered =
    match p.Param.p_dir with
    | Param.More_is_better -> ok
    | Param.Less_is_better -> List.rev ok
  in
  let rec steps acc = function
    | (v1, c1) :: ((v2, c2) :: _ as tl) ->
      steps ((v2, (c1 -. c2) /. float_of_int (abs (v2 - v1))) :: acc) tl
    | _ -> List.rev acc
  in
  match (ordered, steps [] ordered) with
  | [], _ | [ _ ], _ | _, [] -> None
  | (v0, _) :: _, step_list ->
    let best = List.fold_left (fun m (_, d) -> Float.max m d) 0. step_list in
    if best <= 0. then
      (* relaxing never helped: saturated from the start *)
      Some { kn_value = v0; kn_marginal = 0.; kn_saturated = true }
    else
      let threshold = knee_frac *. best in
      let rec find = function
        | [] ->
          let v, d = List.nth step_list (List.length step_list - 1) in
          Some { kn_value = v; kn_marginal = d; kn_saturated = false }
        | (v, d) :: tl ->
          if d < threshold then
            Some { kn_value = v; kn_marginal = d; kn_saturated = true }
          else find tl
      in
      find step_list

let run ?(knee_frac = default_knee_frac) ?point_cache ~engine ~cfg ~prepared
    ~(axes : Param.axis list) () =
  if axes = [] then invalid_arg "Sweep.run: no axes";
  (* every axis gains the session config's own value as a point *)
  let axes =
    List.map
      (fun (a : Param.axis) ->
        Param.axis a.Param.ax_param
          (a.Param.ax_param.Param.p_get cfg :: a.Param.ax_values))
      axes
  in
  (* distinct configs in first-seen order, keyed by marshalled digest *)
  let index = Hashtbl.create 64 in
  let rev_jobs = ref [] in
  let njobs = ref 0 in
  List.iter
    (fun (a : Param.axis) ->
      List.iter
        (fun v ->
          let c = a.Param.ax_param.Param.p_apply cfg v in
          let d = Texport.digest c in
          if not (Hashtbl.mem index d) then (
            Hashtbl.add index d !njobs;
            incr njobs;
            rev_jobs := (a.Param.ax_param, v, c) :: !rev_jobs))
        a.Param.ax_values)
    axes;
  let jobs = Array.of_list (List.rev !rev_jobs) in
  let hits = Atomic.make 0 in
  let span = Telemetry.start_span "sweep.run" in
  let outcomes =
    Pool.parallel_map
      (fun (p, v, c) ->
        let sp = Telemetry.start_span "sweep.point" in
        let res =
          try
            Fault.trip fp_point;
            match point_cache with
            | None -> Ok (eval_point ~engine ~cfg:c ~prepared, false)
            | Some f -> Ok (f c (fun () -> eval_point ~engine ~cfg:c ~prepared))
          with e -> Error e
        in
        Telemetry.incr c_points;
        (match res with
        | Ok (_, true) ->
          Atomic.incr hits;
          Telemetry.incr c_cache_hits
        | _ -> ());
        (if Telemetry.enabled () then
           Telemetry.end_span sp
             ~attrs:
               [
                 ("param", p.Param.p_name);
                 ("value", string_of_int v);
                 ( "cached",
                   match res with Ok (_, h) -> string_of_bool h | _ -> "false"
                 );
               ]
         else Telemetry.end_span sp);
        res)
      jobs
  in
  (if Telemetry.enabled () then
     Telemetry.end_span span
       ~attrs:
         [
           ("engine", engine_name engine);
           ("points", string_of_int (Array.length jobs));
           ("axes", string_of_int (List.length axes));
         ]
   else Telemetry.end_span span);
  let outcome_of c = outcomes.(Hashtbl.find index (Texport.digest c)) in
  let sw_baseline =
    match outcome_of cfg with Ok (cy, _) -> cy | Error e -> raise e
  in
  let curves =
    List.map
      (fun (a : Param.axis) ->
        let p = a.Param.ax_param in
        let points =
          List.map
            (fun v ->
              match outcome_of (p.Param.p_apply cfg v) with
              | Ok (cy, cached) ->
                { pt_value = v; pt_cached = cached; pt_outcome = Ok cy }
              | Error e ->
                { pt_value = v; pt_cached = false; pt_outcome = Error e })
            a.Param.ax_values
        in
        {
          cv_param = p;
          cv_base_value = p.Param.p_get cfg;
          cv_points = points;
          cv_deltas = deltas_of points;
          cv_knee = knee_of ~knee_frac p points;
        })
      axes
  in
  {
    sw_engine = engine;
    sw_baseline;
    sw_points = Array.length jobs;
    sw_cache_hits = Atomic.get hits;
    sw_curves = curves;
  }

let recommendations (r : result) : Advisor.recommendation list =
  let resize (cv : curve) =
    match cv.cv_knee with
    | None -> None
    | Some k ->
      let cycles_at v =
        List.find_map
          (fun pt ->
            if pt.pt_value = v then Result.to_option pt.pt_outcome else None)
          cv.cv_points
      in
      (match cycles_at k.kn_value with
      | None -> None
      | Some knee_cycles ->
        let units = abs (k.kn_value - cv.cv_base_value) in
        let saved = r.sw_baseline -. knee_cycles in
        Some
          (Advisor.Resize
             {
               resource = cv.cv_param.Param.p_name;
               from_units = cv.cv_base_value;
               to_units = k.kn_value;
               cycles_saved = saved;
               cycles_per_unit =
                 (if units = 0 then 0. else saved /. float_of_int units);
             }))
  in
  let per_unit = function
    | Advisor.Resize { cycles_per_unit; _ } -> cycles_per_unit
    | _ -> 0.
  in
  List.filter_map resize r.sw_curves
  |> List.stable_sort (fun a b -> Float.compare (per_unit b) (per_unit a))

let to_string (r : result) : string =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "engine %s; baseline %.0f cycles\n" (engine_name r.sw_engine)
    r.sw_baseline;
  List.iter
    (fun cv ->
      let p = cv.cv_param in
      Printf.bprintf buf "\n%s (%s, baseline %d):\n" p.Param.p_name
        p.Param.p_unit cv.cv_base_value;
      Printf.bprintf buf "  %10s %12s %14s\n" "value" "cycles" "d(cyc)/d(par)";
      List.iter
        (fun pt ->
          let delta =
            match List.assoc_opt pt.pt_value cv.cv_deltas with
            | Some d -> Printf.sprintf "%14.3f" d
            | None -> Printf.sprintf "%14s" "-"
          in
          let marks =
            (if pt.pt_value = cv.cv_base_value then " *base*" else "")
            ^
            match cv.cv_knee with
            | Some k when k.kn_value = pt.pt_value ->
              if k.kn_saturated then " *knee*" else " *knee (unsaturated)*"
            | _ -> ""
          in
          match pt.pt_outcome with
          | Ok cy ->
            Printf.bprintf buf "  %10d %12.0f %s%s\n" pt.pt_value cy delta marks
          | Error e ->
            Printf.bprintf buf "  %10d %12s error: %s\n" pt.pt_value "-"
              (Printexc.to_string e))
        cv.cv_points)
    r.sw_curves;
  (match recommendations r with
  | [] -> ()
  | recs ->
    Buffer.add_string buf "\nrecommendations (by cycles-per-unit ROI):\n";
    List.iter
      (fun rc ->
        Printf.bprintf buf "  %s\n" (Advisor.recommendation_to_string rc))
      recs);
  Buffer.contents buf
