(* Registry of sweepable machine parameters.  See the .mli for why only
   non-structural fields appear: preparation (interpret + annotate) must
   stay valid across every grid point. *)

module Config = Icost_uarch.Config

type direction = More_is_better | Less_is_better

type t = {
  p_name : string;
  p_doc : string;
  p_unit : string;
  p_dir : direction;
  p_min : int;
  p_get : Config.t -> int;
  p_apply : Config.t -> int -> Config.t;
}

(* Keep [p_apply] physically lazy: the baseline point of every axis maps
   to the very same config record, so digest-keyed caches see one entry. *)
let mk name doc unit_ dir min_ get set =
  {
    p_name = name;
    p_doc = doc;
    p_unit = unit_;
    p_dir = dir;
    p_min = min_;
    p_get = get;
    p_apply = (fun c v -> if get c = v then c else set c v);
  }

let all =
  [
    mk "window" "instruction window (ROB) entries" "entries" More_is_better 1
      (fun c -> c.Config.window_size)
      (fun c v -> { c with Config.window_size = v });
    mk "issue_width" "instructions issued per cycle" "instrs/cycle"
      More_is_better 1
      (fun c -> c.Config.issue_width)
      (fun c v -> { c with Config.issue_width = v });
    mk "fetch_bw" "instructions fetched per cycle" "instrs/cycle"
      More_is_better 1
      (fun c -> c.Config.fetch_bw)
      (fun c v -> { c with Config.fetch_bw = v });
    mk "commit_bw" "instructions committed per cycle" "instrs/cycle"
      More_is_better 1
      (fun c -> c.Config.commit_bw)
      (fun c v -> { c with Config.commit_bw = v });
    mk "dl1_lat" "level-one D-cache hit latency" "cycles" Less_is_better 0
      (fun c -> c.Config.dl1_lat)
      (fun c v -> { c with Config.dl1_lat = v });
    mk "l2_lat" "unified L2 hit latency" "cycles" Less_is_better 1
      (fun c -> c.Config.l2_lat)
      (fun c v -> { c with Config.l2_lat = v });
    mk "mem_lat" "main-memory access latency" "cycles" Less_is_better 1
      (fun c -> c.Config.mem_lat)
      (fun c v -> { c with Config.mem_lat = v });
    mk "int_alu" "short integer ALUs" "units" More_is_better 1
      (fun c -> c.Config.num_int_alu)
      (fun c v -> { c with Config.num_int_alu = v });
    mk "int_mul" "integer multiply/divide units" "units" More_is_better 1
      (fun c -> c.Config.num_int_mul)
      (fun c v -> { c with Config.num_int_mul = v });
    mk "fp_alu" "FP add/compare units" "units" More_is_better 1
      (fun c -> c.Config.num_fp_alu)
      (fun c v -> { c with Config.num_fp_alu = v });
    mk "fp_mul" "FP multiply/divide units" "units" More_is_better 1
      (fun c -> c.Config.num_fp_mul)
      (fun c v -> { c with Config.num_fp_mul = v });
    mk "mem_ports" "cache read/write ports" "units" More_is_better 1
      (fun c -> c.Config.num_mem_ports)
      (fun c v -> { c with Config.num_mem_ports = v });
  ]

let names = List.map (fun p -> p.p_name) all
let find name = List.find_opt (fun p -> p.p_name = name) all

let find_exn name =
  match find name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "unknown sweep parameter %S (known: %s)" name
         (String.concat ", " names))

type axis = { ax_param : t; ax_values : int list }

let max_points_per_axis = 64

let axis p values =
  if values = [] then
    invalid_arg (Printf.sprintf "axis %s: no grid values" p.p_name);
  List.iter
    (fun v ->
      if v < p.p_min then
        invalid_arg
          (Printf.sprintf "axis %s: value %d below minimum %d" p.p_name v
             p.p_min))
    values;
  let values = List.sort_uniq compare values in
  if List.length values > max_points_per_axis then
    invalid_arg
      (Printf.sprintf "axis %s: %d grid points exceed the limit of %d"
         p.p_name (List.length values) max_points_per_axis);
  { ax_param = p; ax_values = values }

(* "name=lo..hi" (geometric doubling) or "name=lo..hi:step" (arithmetic);
   hi is always included so the spec's stated range is honored exactly. *)
let parse_axis spec =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt spec '=' with
  | None -> fail "bad axis %S: expected name=lo..hi[:step]" spec
  | Some eq -> (
    let name = String.sub spec 0 eq in
    let rest = String.sub spec (eq + 1) (String.length spec - eq - 1) in
    match find name with
    | None ->
      fail "unknown sweep parameter %S (known: %s)" name
        (String.concat ", " names)
    | Some p -> (
      let range, step =
        match String.index_opt rest ':' with
        | None -> (rest, None)
        | Some c ->
          ( String.sub rest 0 c,
            Some (String.sub rest (c + 1) (String.length rest - c - 1)) )
      in
      let int_of s = int_of_string_opt (String.trim s) in
      let bounds =
        (* split on the ".." separator *)
        let n = String.length range in
        let rec dots i =
          if i + 1 >= n then None
          else if range.[i] = '.' && range.[i + 1] = '.' then Some i
          else dots (i + 1)
        in
        match dots 0 with
        | None -> None
        | Some i -> (
          match
            ( int_of (String.sub range 0 i),
              int_of (String.sub range (i + 2) (n - i - 2)) )
          with
          | Some lo, Some hi -> Some (lo, hi)
          | _ -> None)
      in
      match bounds with
      | None -> fail "bad axis %S: expected name=lo..hi[:step]" spec
      | Some (lo, hi) -> (
        if lo < p.p_min then
          fail "axis %s: lower bound %d below minimum %d" p.p_name lo p.p_min
        else if hi < lo then fail "axis %s: empty range %d..%d" p.p_name lo hi
        else
          let add_values next =
            let rec go acc v =
              if v >= hi then List.rev (hi :: acc)
              else
                let n = next v in
                if n <= v then List.rev (hi :: acc) (* paranoia: no progress *)
                else go (v :: acc) n
            in
            go [] lo
          in
          match step with
          | None ->
            (* geometric doubling; lo = 0 cannot double, fall back to +1 *)
            let values = add_values (fun v -> if v <= 0 then 1 else 2 * v) in
            if List.length values > max_points_per_axis then
              fail "axis %s: %d grid points exceed the limit of %d" p.p_name
                (List.length values) max_points_per_axis
            else Ok (axis p values)
          | Some s -> (
            match int_of s with
            | None | Some 0 -> fail "bad axis %S: step must be a nonzero int" spec
            | Some s when s < 0 -> fail "bad axis %S: step must be positive" spec
            | Some s ->
              if (hi - lo) / s + 2 > max_points_per_axis then
                fail "axis %s: %d grid points exceed the limit of %d" p.p_name
                  ((hi - lo) / s + 2)
                  max_points_per_axis
              else Ok (axis p (add_values (fun v -> v + s)))))))

let parse_axes specs =
  if specs = [] then Error "no sweep axes given"
  else
    let rec go acc seen = function
      | [] -> Ok (List.rev acc)
      | spec :: tl -> (
        match parse_axis spec with
        | Error _ as e -> e
        | Ok a ->
          if List.mem a.ax_param.p_name seen then
            Error
              (Printf.sprintf "duplicate sweep parameter %S" a.ax_param.p_name)
          else go (a :: acc) (a.ax_param.p_name :: seen) tl)
    in
    go [] [] specs

let axis_to_string a =
  Printf.sprintf "%s=%s" a.ax_param.p_name
    (String.concat "," (List.map string_of_int a.ax_values))
