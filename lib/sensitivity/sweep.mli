(** Parametric sensitivity sweeps: d(cycles)/d(parameter) curves,
    saturation knees and resize ROI.

    Where the interaction-cost analyses idealize a resource completely
    (Sections 2-4 of the paper), a sweep evaluates a {e grid} of concrete
    provisionings along one or more {!Param} axes and post-processes the
    cycle curve into first differences, a {e saturation knee} (the first
    point, walking in the relaxation direction, whose marginal benefit
    per unit drops below a threshold fraction of the axis' best marginal
    benefit) and a cycles-per-unit-resource ranking surfaced as
    {!Icost_core.Advisor.Resize} recommendations — the sensitivity-and-
    causality reading of the related work (Dutilleul et al., Pompougnac
    et al.; PAPERS.md).

    One {!Icost_experiments.Runner.prepared} execution serves every
    point: traces are architectural and annotation is structural-only, so
    each point re-times the {e same} prepared trace under its perturbed
    config.  Distinct grid points are deduplicated by config digest
    (axes share their baseline point), evaluated in parallel over the
    {!Icost_util.Pool} domain pool, and individually supervised: a point
    that raises becomes a per-point error without poisoning its axis —
    mirroring the service batch op, and feeding the service's typed
    per-point errors directly.

    Telemetry: a [sweep.run] span with one [sweep.point] child per
    evaluated point, plus [sweep.points] / [sweep.cache_hits] counters.
    Each point evaluation is the [sweep_point] {!Icost_util.Fault}
    injection point. *)

module Config = Icost_uarch.Config
module Runner = Icost_experiments.Runner
module Advisor = Icost_core.Advisor

(** How a point is priced.  [Sim] re-runs the out-of-order timing model
    and reports simulated cycles ([multisim] engine); [Graph_cp] also
    rebuilds the dependence graph of the re-timed execution and reports
    its critical-path length ([graph]/[fullgraph] engine).  Either way
    the baseline point reproduces the corresponding engine's baseline
    bit-exactly (the [sweep-baseline-identity] law). *)
type engine = Sim | Graph_cp

val engine_of_string : string -> (engine, string) result
(** ["multisim"] is [Sim]; ["graph"]/["fullgraph"] are [Graph_cp]; the
    profiler cannot price arbitrary provisionings (its samples embed the
    session config), so ["profiler"] — like unknown names — is [Error]. *)

val engine_name : engine -> string
(** ["multisim"] / ["graph"]. *)

val eval_point :
  engine:engine -> cfg:Config.t -> prepared:Runner.prepared -> float
(** Price one config point (no caching, no supervision): a baseline
    {!Runner.baseline_run} re-simulation, plus the graph rebuild and
    critical path for [Graph_cp]. *)

type point = {
  pt_value : int;
  pt_cached : bool;  (** served by the [?point_cache] *)
  pt_outcome : (float, exn) result;  (** cycles, or what evaluation raised *)
}

type knee = {
  kn_value : int;
  kn_marginal : float;
      (** marginal benefit at the knee: cycles saved per unit over the
          step (in relaxation order) that reaches the knee *)
  kn_saturated : bool;
      (** false when no step dropped below the threshold — the knee is
          the grid edge and the resource is still paying off there *)
}

type curve = {
  cv_param : Param.t;
  cv_base_value : int;  (** the session config's value on this axis *)
  cv_points : point list;  (** ascending by value; includes the baseline *)
  cv_deltas : (int * float) list;
      (** [(value, d(cycles)/d(param))] between consecutive evaluated
          points in ascending-value order, attributed to the upper value *)
  cv_knee : knee option;  (** [None] with fewer than two evaluated points *)
}

type result = {
  sw_engine : engine;
  sw_baseline : float;  (** cycles at the unperturbed session config *)
  sw_points : int;  (** distinct config points evaluated (or served) *)
  sw_cache_hits : int;  (** of which the [?point_cache] already held *)
  sw_curves : curve list;  (** one per axis, in request order *)
}

val default_knee_frac : float
(** 0.05: a step is saturated when it saves less than 5% of the axis'
    best observed cycles-per-unit. *)

val run :
  ?knee_frac:float ->
  ?point_cache:(Config.t -> (unit -> float) -> float * bool) ->
  engine:engine ->
  cfg:Config.t ->
  prepared:Runner.prepared ->
  axes:Param.axis list ->
  unit ->
  result
(** Evaluate the grid.  Each axis is augmented with the session config's
    own value so every curve contains its baseline point; distinct
    configs across all axes are priced once.  [?point_cache cfg build]
    lets the caller (the resident server) interpose a digest-keyed cache:
    it returns the cycles and whether the entry already existed.  A point
    whose evaluation raises is reported as [Error] in its [pt_outcome];
    the baseline point raising is fatal (re-raised) since every
    derivative on the curve is relative to it.
    @raise Invalid_argument on an empty axis list. *)

val recommendations : result -> Advisor.recommendation list
(** One {!Advisor.Resize} per curve with a knee, ranked by descending
    cycles-per-unit ROI of moving the resource from its baseline value to
    the knee. *)

val to_string : result -> string
(** Human-readable curve tables (the [icost sweep] default output). *)
