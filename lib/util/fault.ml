(* Deterministic fault injection.  See fault.mli for the contract.

   Concurrency design mirrors Telemetry: one atomic enabled flag guards
   the fast path; points are interned in a mutex-guarded registry; each
   point's hit counter and PRNG advance under the point's own mutex, so
   a point's schedule depends only on its own hit order. *)

type mode =
  | Off
  | Prob of float  (* fire each hit with probability p *)
  | At of int  (* fire on the k-th hit only (1-based) *)
  | From of int  (* fire on every hit from the k-th onward *)

type point = {
  pname : string;
  lock : Mutex.t;
  mutable mode : mode;
  mutable prng : Prng.t;
  mutable hits : int;
  mutable fired : int;
}

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected p -> Some (Printf.sprintf "injected fault at point %S" p)
    | _ -> None)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let injected_tally = Atomic.make 0

let injected_total () = Atomic.get injected_tally

let c_injected = Telemetry.counter "fault.injected"

type config = { spec : string; seed : int; modes : (string * mode) list }

let registry_mutex = Mutex.create ()

let registry : (string, point) Hashtbl.t = Hashtbl.create 16

(* guarded by registry_mutex *)
let active : config option ref = ref None

(* Hashtbl.hash on strings is deterministic across runs, which makes the
   per-point seed derivation stable for a given (global seed, name). *)
let arm cfg p =
  p.mode <-
    (match List.assoc_opt p.pname cfg.modes with Some m -> m | None -> Off);
  p.prng <- Prng.create (cfg.seed lxor Hashtbl.hash p.pname);
  p.hits <- 0;
  p.fired <- 0

let point name =
  Mutex.lock registry_mutex;
  let p =
    match Hashtbl.find_opt registry name with
    | Some p -> p
    | None ->
      let p =
        { pname = name; lock = Mutex.create (); mode = Off;
          prng = Prng.create (Hashtbl.hash name); hits = 0; fired = 0 }
      in
      (match !active with Some cfg -> arm cfg p | None -> ());
      Hashtbl.add registry name p;
      p
  in
  Mutex.unlock registry_mutex;
  p

let name p = p.pname

let hits p =
  Mutex.lock p.lock;
  let n = p.hits in
  Mutex.unlock p.lock;
  n

let fired p =
  Mutex.lock p.lock;
  let n = p.fired in
  Mutex.unlock p.lock;
  n

(* ---------- spec parsing ---------- *)

let parse_mode ~point_name s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if s = "" then err "point %S: empty trigger" point_name
  else if s.[0] = '@' then begin
    let body = String.sub s 1 (String.length s - 1) in
    let every, body =
      if body <> "" && body.[String.length body - 1] = '+' then
        (true, String.sub body 0 (String.length body - 1))
      else (false, body)
    in
    match int_of_string_opt body with
    | Some k when k >= 1 -> Ok (if every then From k else At k)
    | _ -> err "point %S: bad schedule %S (want @K or @K+, K >= 1)" point_name s
  end
  else
    match float_of_string_opt s with
    | Some p when p >= 0. && p <= 1. -> Ok (Prob p)
    | _ -> err "point %S: bad probability %S (want a float in [0,1])" point_name s

let parse_point part =
  match String.index_opt part ':' with
  | None ->
    if part = "" then Error "empty point name"
    else Ok (part, From 1) (* bare name: fire on every hit *)
  | Some i ->
    let name = String.sub part 0 i in
    let trig = String.sub part (i + 1) (String.length part - i - 1) in
    if name = "" then Error (Printf.sprintf "missing point name in %S" part)
    else Result.map (fun m -> (name, m)) (parse_mode ~point_name:name trig)

let mode_to_string = function
  | Off -> "off"
  | Prob p -> Printf.sprintf "%g" p
  | At k -> Printf.sprintf "@%d" k
  | From k -> Printf.sprintf "@%d+" k

let normalize modes seed =
  String.concat ","
    (List.map (fun (n, m) -> Printf.sprintf "%s:%s" n (mode_to_string m)) modes)
  ^ Printf.sprintf ";seed=%d" seed

let parse spec =
  let ( let* ) = Result.bind in
  let segments =
    String.split_on_char ';' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go seed modes = function
    | [] -> Ok (seed, List.rev modes)
    | seg :: rest ->
      if String.length seg >= 5 && String.sub seg 0 5 = "seed=" then begin
        match int_of_string_opt (String.sub seg 5 (String.length seg - 5)) with
        | Some s -> go s modes rest
        | None -> Error (Printf.sprintf "bad seed in %S" seg)
      end
      else begin
        let parts =
          String.split_on_char ',' seg |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        if parts = [] then Error (Printf.sprintf "empty point list in %S" seg)
        else
          let* pts =
            List.fold_left
              (fun acc part ->
                let* acc = acc in
                let* p = parse_point part in
                Ok (p :: acc))
              (Ok []) parts
          in
          go seed (pts @ modes) rest
      end
  in
  let* seed, modes = go 0 [] segments in
  if modes = [] then Error "no injection points in spec"
  else Ok { spec = normalize modes seed; seed; modes }

(* ---------- configuration ---------- *)

let configure spec =
  match parse spec with
  | Error _ as e -> e
  | Ok cfg ->
    Mutex.lock registry_mutex;
    active := Some cfg;
    Hashtbl.iter (fun _ p -> arm cfg p) registry;
    Mutex.unlock registry_mutex;
    Atomic.set enabled_flag true;
    Ok ()

let configure_exn spec =
  match configure spec with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fault.configure: " ^ m)

let from_env () =
  match Sys.getenv_opt "ICOST_FAULTS" with
  | None | Some "" -> Ok ()
  | Some spec -> configure spec

let disable () =
  Atomic.set enabled_flag false;
  Mutex.lock registry_mutex;
  active := None;
  Hashtbl.iter (fun _ p -> p.mode <- Off) registry;
  Mutex.unlock registry_mutex

let active_spec () =
  Mutex.lock registry_mutex;
  let s = match !active with Some c -> Some c.spec | None -> None in
  Mutex.unlock registry_mutex;
  s

(* ---------- the hot path ---------- *)

let fire p =
  Atomic.get enabled_flag
  && begin
       Mutex.lock p.lock;
       p.hits <- p.hits + 1;
       let f =
         match p.mode with
         | Off -> false
         | Prob pr -> Prng.float p.prng < pr
         | At k -> p.hits = k
         | From k -> p.hits >= k
       in
       if f then p.fired <- p.fired + 1;
       Mutex.unlock p.lock;
       if f then begin
         Atomic.incr injected_tally;
         Telemetry.incr c_injected
       end;
       f
     end

let trip p = if fire p then raise (Injected p.pname)
