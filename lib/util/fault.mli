(** Deterministic fault injection for robustness testing.

    The service stack (and any future subsystem) declares {e named
    injection points} at its failure seams — socket reads and writes,
    request decoding, scheduler intake, worker bodies, cache builds —
    and asks each point whether to misbehave {e right now}.  Which
    points misbehave, and when, is driven entirely by a textual
    configuration, so a chaos run is reproducible from its spec string
    the same way an analysis is reproducible from its seed.

    {b Zero cost when off.}  Like {!Telemetry}, the framework is
    disabled by default: {!fire} first reads one atomic flag and
    returns [false] immediately, so production paths pay a single
    predictable branch and allocate nothing.  Handles ({!point}) are
    interned once at module-initialization time, never in hot loops.

    {b Deterministic when on.}  Every point owns a SplitMix64 stream
    seeded from the global seed and the point's name, and its own hit
    counter, both advanced under a per-point mutex.  A point's
    injection schedule therefore depends only on the spec and on how
    many times {e that point} was hit — not on thread interleaving
    across points.

    {b Spec grammar} ([ICOST_FAULTS] / [icost serve --faults]):

    {v points ::= point ("," point)*
point  ::= NAME                 fire on every hit
         | NAME ":" PROB        fire each hit with probability PROB in [0,1]
         | NAME ":" "@" K       fire on the K-th hit only (1-based)
         | NAME ":" "@" K "+"   fire on every hit from the K-th onward
spec   ::= points (";" "seed=" N)?   segments may appear in any order v}

    Example: ["write_short:0.2,worker_raise:0.05;seed=42"].  Points
    named in the spec that no code ever declares are legal (they simply
    never fire); declared points absent from the spec stay off. *)

type point
(** An interned injection point; obtain with {!point}. *)

exception Injected of string
(** Raised by {!trip}; carries the point name.  The standard "this
    fault is an exception" payload — handlers that must distinguish
    injected faults from organic ones can match on it. *)

(** {1 Configuration} *)

val configure : string -> (unit, string) result
(** Parse a spec, (re)seed and (re)arm every interned point, and enable
    the framework.  Replaces any previous configuration and resets all
    hit counts, so two [configure] calls with the same spec yield
    identical injection sequences. *)

val configure_exn : string -> unit
(** @raise Invalid_argument on a malformed spec. *)

val from_env : unit -> (unit, string) result
(** {!configure} from the [ICOST_FAULTS] environment variable; a no-op
    [Ok ()] when the variable is unset or empty. *)

val disable : unit -> unit
(** Drop the configuration; every point stops firing and {!fire}
    returns to its one-branch fast path. *)

val enabled : unit -> bool

val active_spec : unit -> string option
(** The normalized spec of the active configuration (always ends in
    [";seed=N"]), or [None] when disabled.  Recorded in run manifests
    so chaos artifacts are distinguishable from clean runs. *)

(** {1 Injection points} *)

val point : string -> point
(** Intern a point by name: the same name always yields the same point.
    Call at module-initialization time, not in hot loops. *)

val name : point -> string

val fire : point -> bool
(** Should this point misbehave now?  One atomic load and [false] when
    the framework is disabled; otherwise counts the hit, advances the
    point's PRNG/schedule, and reports (and tallies) an injection. *)

val trip : point -> unit
(** [trip p] raises [Injected (name p)] when [fire p] says so — the
    one-liner for "this seam fails by raising". *)

(** {1 Accounting} *)

val injected_total : unit -> int
(** Process-wide injections so far (plain atomic tally, counted whether
    or not the {!Telemetry} sink is enabled; the sink's
    [fault.injected] counter mirrors it while enabled). *)

val hits : point -> int
(** Times the point was consulted since the last {!configure}. *)

val fired : point -> int
(** Times it actually injected since the last {!configure}. *)
