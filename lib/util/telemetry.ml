(** Process-global tracing/metrics sink.  See telemetry.mli for the
    contract.

    Concurrency design: the enabled flag and every counter cell are
    [Atomic.t]s; span nesting is tracked on a per-domain stack (domain-local
    storage, no locking); completed spans are appended to one mutex-guarded
    global list (spans are coarse — pipeline stages, oracle queries,
    reports — so one lock per completed span is noise).  Counter and gauge
    handles are interned in a mutex-guarded registry, which instrumented
    modules consult once at initialization time. *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let enable () = Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let clock : (unit -> float) ref = ref Unix.gettimeofday

let set_clock f = clock := f

let now () = !clock ()

(* ---------- counters and gauges ---------- *)

type counter = { cname : string; cell : int Atomic.t }

type gauge = { gname : string; gcell : float Atomic.t }

let registry_mutex = Mutex.create ()

let counter_registry : (string, counter) Hashtbl.t = Hashtbl.create 64

let gauge_registry : (string, gauge) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt counter_registry name with
    | Some c -> c
    | None ->
      let c = { cname = name; cell = Atomic.make 0 } in
      Hashtbl.add counter_registry name c;
      c
  in
  Mutex.unlock registry_mutex;
  c

let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)

let incr c = add c 1

let value c = Atomic.get c.cell

let gauge name =
  Mutex.lock registry_mutex;
  let g =
    match Hashtbl.find_opt gauge_registry name with
    | Some g -> g
    | None ->
      let g = { gname = name; gcell = Atomic.make 0. } in
      Hashtbl.add gauge_registry name g;
      g
  in
  Mutex.unlock registry_mutex;
  g

let set g v = if Atomic.get enabled_flag then Atomic.set g.gcell v

let gauge_value g = Atomic.get g.gcell

(* ---------- spans ---------- *)

type span = int

type span_record = {
  id : int;
  parent : int;
  tid : int;
  name : string;
  start : float;
  dur : float;
  attrs : (string * string) list;
}

type pending = { p_id : int; p_name : string; p_start : float; p_parent : int }

(* per-domain span stack: nesting without locks *)
let stack_key : pending list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let next_id = Atomic.make 1

let completed_mutex = Mutex.create ()

let completed : span_record list ref = ref []

let start_span name : span =
  if not (Atomic.get enabled_flag) then 0
  else begin
    let st = Domain.DLS.get stack_key in
    let parent = match !st with [] -> 0 | p :: _ -> p.p_id in
    let id = Atomic.fetch_and_add next_id 1 in
    st := { p_id = id; p_name = name; p_start = now (); p_parent = parent } :: !st;
    id
  end

let record ?(attrs = []) (p : pending) stop =
  let r =
    {
      id = p.p_id;
      parent = p.p_parent;
      tid = (Domain.self () :> int);
      name = p.p_name;
      start = p.p_start;
      dur = Float.max 0. (stop -. p.p_start);
      attrs;
    }
  in
  Mutex.lock completed_mutex;
  completed := r :: !completed;
  Mutex.unlock completed_mutex

let end_span ?attrs (sp : span) =
  if sp <> 0 then begin
    let st = Domain.DLS.get stack_key in
    (* pop to the matching token; unbalanced inner spans (an exception path
       that skipped end_span) are dropped rather than mis-nested *)
    let rec pop = function
      | [] -> ()
      | p :: rest when p.p_id = sp ->
        st := rest;
        record ?attrs p (now ())
      | _ :: rest -> pop rest
    in
    pop !st
  end

let with_span ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let sp = start_span name in
    Fun.protect ~finally:(fun () -> end_span ?attrs sp) f
  end

(* ---------- export ---------- *)

let spans () =
  Mutex.lock completed_mutex;
  let l = !completed in
  Mutex.unlock completed_mutex;
  List.stable_sort (fun a b -> compare a.start b.start) l

let counters () =
  Mutex.lock registry_mutex;
  let l = Hashtbl.fold (fun _ c acc -> (c.cname, Atomic.get c.cell) :: acc) counter_registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let gauges () =
  Mutex.lock registry_mutex;
  let l = Hashtbl.fold (fun _ g acc -> (g.gname, Atomic.get g.gcell) :: acc) gauge_registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let reset () =
  Mutex.lock completed_mutex;
  completed := [];
  Mutex.unlock completed_mutex;
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counter_registry;
  Hashtbl.iter (fun _ g -> Atomic.set g.gcell 0.) gauge_registry;
  Mutex.unlock registry_mutex
