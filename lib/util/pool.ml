(** Fixed-size domain pool.  See pool.mli for the contract.

    Structure: a process-global bank of worker domains blocked on a
    mutex/condition-protected job queue.  A parallel call turns into one
    "batch" closure that pulls element indices from an atomic counter; the
    batch is enqueued once per worker and also run by the submitting
    domain, so the submitter never idles and a pool of size 1 degenerates
    to a plain sequential loop.  Workers that pick the batch up after the
    counter is exhausted return immediately, so stale queue entries are
    harmless. *)

(* Is the current domain a pool worker?  Workers run nested parallel calls
   sequentially: a worker blocked on an inner fan-out could otherwise
   deadlock the pool when every worker does the same. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Slot index of the current domain in the pool: 0 is the submitting
   domain, workers are 1..jobs-1.  Only used to attribute telemetry. *)
let slot_ix : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let c_batches = Telemetry.counter "pool.batches"
let c_tasks = Telemetry.counter "pool.tasks"
let c_queue_wait = Telemetry.counter "pool.queue_wait_us"

let default_jobs () =
  let recommended = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "ICOST_JOBS" with
  | None -> recommended
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> recommended)

let configured_jobs : int option ref = ref None

let jobs () =
  match !configured_jobs with
  | Some n -> n
  | None ->
    let n = default_jobs () in
    configured_jobs := Some n;
    n

type pool = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  slot_tasks : Telemetry.counter array;  (** tasks pulled, per domain slot *)
  slot_busy : Telemetry.counter array;  (** batch-body microseconds, per slot *)
}

let state : pool option ref = ref None

let worker_loop (p : pool) ix () =
  Domain.DLS.set in_worker true;
  Domain.DLS.set slot_ix ix;
  let rec loop () =
    Mutex.lock p.mutex;
    while Queue.is_empty p.queue && not p.stop do
      Condition.wait p.work_ready p.mutex
    done;
    if Queue.is_empty p.queue && p.stop then Mutex.unlock p.mutex
    else begin
      let job = Queue.pop p.queue in
      Mutex.unlock p.mutex;
      job ();
      loop ()
    end
  in
  loop ()

let shutdown () =
  match !state with
  | None -> ()
  | Some p ->
    Mutex.lock p.mutex;
    p.stop <- true;
    Condition.broadcast p.work_ready;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.domains;
    state := None

let () = at_exit shutdown

(* The pool holds [jobs () - 1] workers; the submitting domain is the
   remaining job. *)
let ensure_pool () : pool =
  match !state with
  | Some p -> p
  | None ->
    let p =
      {
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        queue = Queue.create ();
        stop = false;
        domains = [];
        slot_tasks =
          Array.init (jobs ()) (fun i ->
              Telemetry.counter (Printf.sprintf "pool.slot%d.tasks" i));
        slot_busy =
          Array.init (jobs ()) (fun i ->
              Telemetry.counter (Printf.sprintf "pool.slot%d.busy_us" i));
      }
    in
    p.domains <-
      List.init (jobs () - 1) (fun i -> Domain.spawn (worker_loop p (i + 1)));
    state := Some p;
    p

let set_jobs n =
  shutdown ();
  configured_jobs := Some (max 1 n)

(* Run [work 0 .. work (total-1)] across the pool, returning when all are
   done.  [work] must not raise (callers wrap exceptions). *)
let run_batch (total : int) (work : int -> unit) =
  let p = ensure_pool () in
  let sp = Telemetry.start_span "pool.batch" in
  Telemetry.incr c_batches;
  let t_submit = if Telemetry.enabled () then Unix.gettimeofday () else 0. in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let done_mutex = Mutex.create () in
  let all_done = Condition.create () in
  let batch () =
    let slot = Domain.DLS.get slot_ix in
    (* queue wait: submit-to-pickup latency, attributed to worker slots
       only (the submitting domain starts its share immediately) *)
    let t0 =
      if Telemetry.enabled () then begin
        let t = Unix.gettimeofday () in
        if slot > 0 then
          Telemetry.add c_queue_wait (int_of_float ((t -. t_submit) *. 1e6));
        t
      end
      else 0.
    in
    let tasks = p.slot_tasks.(slot) in
    let rec pull () =
      let i = Atomic.fetch_and_add next 1 in
      if i < total then begin
        work i;
        Telemetry.incr tasks;
        if Atomic.fetch_and_add completed 1 + 1 = total then begin
          Mutex.lock done_mutex;
          Condition.broadcast all_done;
          Mutex.unlock done_mutex
        end;
        pull ()
      end
    in
    pull ();
    if Telemetry.enabled () then
      Telemetry.add p.slot_busy.(slot)
        (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
  in
  Mutex.lock p.mutex;
  for _ = 1 to List.length p.domains do
    Queue.add batch p.queue
  done;
  Condition.broadcast p.work_ready;
  Mutex.unlock p.mutex;
  batch ();
  Mutex.lock done_mutex;
  while Atomic.get completed < total do
    Condition.wait all_done done_mutex
  done;
  Mutex.unlock done_mutex;
  Telemetry.add c_tasks total;
  Telemetry.end_span sp ~attrs:[ ("tasks", string_of_int total) ]

let sequential () = jobs () = 1 || Domain.DLS.get in_worker

let parallel_mapi (f : int -> 'a -> 'b) (a : 'a array) : 'b array =
  let n = Array.length a in
  if n <= 1 || sequential () then Array.mapi f a
  else begin
    let results : 'b option array = Array.make n None in
    let err_mutex = Mutex.create () in
    (* first error by element index, so a parallel run raises exactly what
       the sequential run would have raised first *)
    let err : (int * exn) option ref = ref None in
    let work i =
      match f i a.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
        Mutex.lock err_mutex;
        (match !err with
         | Some (j, _) when j < i -> ()
         | _ -> err := Some (i, e));
        Mutex.unlock err_mutex
    in
    run_batch n work;
    match !err with
    | Some (_, e) -> raise e
    | None -> Array.map Option.get results
  end

let parallel_map f a = parallel_mapi (fun _ x -> f x) a

let parallel_iter f a = ignore (parallel_map (fun x -> f x) a : unit array)

let parallel_map_list f l = Array.to_list (parallel_map f (Array.of_list l))

let parallel_chunks n (body : lo:int -> hi:int -> unit) =
  if n > 0 then begin
    let j = min (jobs ()) n in
    if j <= 1 || Domain.DLS.get in_worker then body ~lo:0 ~hi:n
    else
      parallel_iter
        (fun (lo, hi) -> if lo < hi then body ~lo ~hi)
        (Array.init j (fun k -> (k * n / j, (k + 1) * n / j)))
  end
