(** Zero-dependency tracing and metrics sink for the analysis stack.

    Three kinds of instruments, all funneled into one process-global sink:

    - {b spans}: hierarchical wall-clock intervals (start/stop with
      nesting tracked per domain), each with a name, a thread (domain) id,
      a parent span and optional string attributes;
    - {b counters}: named monotonic integer counters, safe to bump from
      any domain concurrently (atomic, no lost increments under
      {!Pool.parallel_map});
    - {b gauges}: named last-write-wins floats for point-in-time values.

    The sink is {e disabled by default}: every instrument call first reads
    one atomic flag and returns immediately when it is off, so the hot
    paths (graph evaluation, the timing simulator, the pool's task pull
    loop) pay a single predictable branch and allocate nothing.  Handles
    ({!counter}, {!gauge}) are interned once at module-initialization time
    of the instrumented module, never in inner loops.

    When enabled, span completion appends to a mutex-guarded global list
    and counter bumps are single [Atomic.fetch_and_add]s, so the sink is
    safe with the {!Pool} domain pool active.  Exporters (the span tree,
    Chrome trace-event JSON and flat metrics JSON in [Icost_report])
    consume the accumulated data after the measured region.

    The clock defaults to [Unix.gettimeofday] (the finest-grained clock in
    the stdlib); it is pluggable via {!set_clock} so tests can drive spans
    deterministically. *)

(** {1 Sink control} *)

val enabled : unit -> bool
(** One atomic load; the guard every instrument call starts with. *)

val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero all counters and gauges and drop all completed spans (handles
    stay valid).  Intended for tests and for reusing one process for
    several measured runs. *)

val set_clock : (unit -> float) -> unit
(** Replace the span clock (seconds; must be non-decreasing). *)

(** {1 Counters and gauges} *)

type counter

val counter : string -> counter
(** Intern a counter by name: the same name always yields the same
    counter.  Call at module-initialization time, not in hot loops. *)

val add : counter -> int -> unit
(** Atomic add, a no-op (one branch) when the sink is disabled. *)

val incr : counter -> unit

val value : counter -> int

type gauge

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Spans} *)

type span
(** A token returned by {!start_span}; the null token (sink disabled at
    start time) makes {!end_span} a no-op. *)

val start_span : string -> span
(** Open a span on the current domain's stack.  Allocation-free when the
    sink is disabled. *)

val end_span : ?attrs:(string * string) list -> span -> unit
(** Close the span, recording its duration and attributes.  Build [attrs]
    only under an {!enabled} check so disabled call sites stay
    allocation-free. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span, closing it on exceptions
    too.  For coarse call sites (one span per report or per workload). *)

(** {1 Export} *)

type span_record = {
  id : int;  (** unique, > 0 *)
  parent : int;  (** enclosing span id, or 0 for a root *)
  tid : int;  (** domain id the span ran on *)
  name : string;
  start : float;  (** clock seconds at {!start_span} *)
  dur : float;  (** seconds *)
  attrs : (string * string) list;
}

val spans : unit -> span_record list
(** Completed spans, sorted by start time. *)

val counters : unit -> (string * int) list
(** All interned counters with their current values, sorted by name. *)

val gauges : unit -> (string * float) list
