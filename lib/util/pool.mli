(** A reusable fixed-size domain pool for the embarrassingly parallel
    fan-outs of icost analysis (per-workload preparation, per-subset
    oracle queries, subset sweeps over one graph).

    The pool is a process-global set of worker domains created lazily on
    first use.  Results are deterministic: {!parallel_map} returns exactly
    [Array.map f a] regardless of the number of jobs or scheduling, and if
    several elements raise, the exception of the {e smallest} index is
    re-raised — so a parallel run fails the same way a sequential one
    would.

    Sizing: [ICOST_JOBS] in the environment wins; otherwise
    [Domain.recommended_domain_count () - 1], clamped to at least 1.  With
    one job every combinator degenerates to its sequential stdlib
    counterpart (no domains are ever spawned).

    Nested calls are safe: a task that itself calls into the pool runs its
    inner fan-out sequentially (workers never block waiting on other
    workers, so the pool cannot deadlock). *)

val jobs : unit -> int
(** Number of concurrent jobs the pool will use (>= 1). *)

val set_jobs : int -> unit
(** Override the job count (clamped to >= 1), shutting down any existing
    workers.  Intended for tests and for CLI [-j] style flags; normal
    configuration goes through [ICOST_JOBS]. *)

val parallel_map : ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f a] is [Array.map f a], evaluated by the pool.  [f]
    must be safe to call from several domains at once (all analysis
    closures in this repository are: they share only immutable traces,
    graphs and configurations, or mutex-guarded memo tables). *)

val parallel_mapi : (int -> 'a -> 'b) -> 'a array -> 'b array
(** Indexed variant of {!parallel_map}. *)

val parallel_iter : ('a -> unit) -> 'a array -> unit
(** [parallel_iter f a] runs [f] on every element; completion order is
    unspecified but the call returns only when all are done. *)

val parallel_map_list : ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} over lists (order preserved). *)

val parallel_chunks : int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_chunks n body] partitions [0, n) into one contiguous
    [\[lo, hi)] range per job and runs [body] on each range.  Used when
    per-task scratch state (e.g. a reusable evaluation buffer) should be
    allocated once per job rather than once per element. *)

val shutdown : unit -> unit
(** Join all worker domains (idempotent; also registered [at_exit]).  The
    pool restarts transparently on the next parallel call. *)
