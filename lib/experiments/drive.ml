(** Top-level experiment driver: one entry point per paper artifact,
    shared by the CLI ([bin/main.ml]) and the bench harness
    ([bench/main.ml]).  Each function takes prepared workloads and returns
    the rendered report plus machine-readable shape checks where
    applicable. *)

module Config = Icost_uarch.Config
module Telemetry = Icost_util.Telemetry

type report = { id : string; title : string; body : string; checks : (string * bool) list }

(* One telemetry span per paper artifact, so a trace shows where the
   wall-clock of a `Drive` run goes report by report. *)
let traced id (f : unit -> report) : report =
  Telemetry.with_span ("report:" ^ id) f

let check_lines checks =
  String.concat ""
    (List.map
       (fun (d, ok) -> Printf.sprintf "[%s] %s\n" (if ok then "PASS" else "FAIL") d)
       checks)

let table4 (v : Exp_table4.variant) ~id prepared : report =
  traced id (fun () ->
      let r = Exp_table4.compute v prepared in
      let checks = Exp_table4.shape_checks r in
      { id; title = v.label; body = Exp_table4.render r; checks })

let table4a prepared = table4 Exp_table4.table4a ~id:"table4a" prepared
let table4b prepared = table4 Exp_table4.table4b ~id:"table4b" prepared
let table4c prepared = table4 Exp_table4.table4c ~id:"table4c" prepared

let fig1 prepared : report =
  traced "fig1" @@ fun () ->
  let p =
    match prepared with
    | [] -> invalid_arg "fig1: no workloads"
    | p :: _ -> (
      match List.find_opt (fun (q : Runner.prepared) -> q.name = "gcc") prepared with
      | Some q -> q
      | None -> p)
  in
  let r = Exp_fig1.compute p in
  let total =
    List.fold_left (fun a (_, v) -> a +. v) r.other (r.base_pcts @ r.interaction_pcts)
  in
  {
    id = "fig1";
    title = "Figure 1: correctly reporting breakdowns";
    body = Exp_fig1.render r;
    checks =
      [
        ("icost breakdown accounts for 100% of cycles", Float.abs (total -. 100.) < 0.1);
        ( "interaction categories are non-trivial",
          List.exists (fun (_, v) -> Float.abs v > 0.5) r.interaction_pcts );
      ];
  }

let fig3 ?(w0 = 64) ?(w1 = 128) prepared : report =
  traced "fig3" @@ fun () ->
  let r = Exp_fig3.compute prepared in
  let ag = Exp_fig3.agreement r ~w0 ~w1 ~lat_lo:1 ~lat_hi:4 in
  let all_agree = List.for_all (fun (_, _, _, _, a) -> a) ag in
  let serial_exists = List.exists (fun (_, ic, _, _, _) -> ic < -1.) ag in
  let body =
    Exp_fig3.render r ~w0 ~w1 ^ "\n"
    ^ Exp_fig3.render_wakeup (Exp_fig3.wakeup_corollary ~w0 ~w1 prepared)
  in
  {
    id = "fig3";
    title = "Figure 3 + Section 4.3: sensitivity study vs icost";
    body;
    checks =
      [
        ("icost sign agrees with the sensitivity study on every benchmark", all_agree);
        ("at least one benchmark shows a serial dl1+win interaction", serial_exists);
      ];
  }

let table7 ?profiler_opts prepared : report =
  traced "table7" @@ fun () ->
  let r = Exp_table7.compute ?profiler_opts prepared in
  let overall l = Icost_util.Stats.mean (List.map snd l) in
  let eg = overall r.err_vs_graph and em = overall r.err_vs_multisim in
  {
    id = "table7";
    title = "Table 7: profiler validation";
    body = Exp_table7.render r;
    checks =
      [
        (Printf.sprintf "profiler tracks the full graph (mean error %.0f%% <= 25%%)" eg, eg <= 25.);
        (Printf.sprintf "profiler tracks multisim (mean error %.0f%% <= 40%%)" em, em <= 40.);
      ];
  }

let profstats prepared : report =
  traced "profstats" @@ fun () ->
  let rows = Exp_profiler_stats.compute prepared in
  let total_built =
    List.fold_left (fun a (r : Exp_profiler_stats.bench_stats) -> a + r.stats.fragments_built) 0 rows
  in
  let match_ok =
    List.for_all
      (fun (r : Exp_profiler_stats.bench_stats) -> r.stats.match_rate >= 0.95)
      rows
  in
  {
    id = "profstats";
    title = "Section 5: shotgun profiler statistics";
    body = Exp_profiler_stats.render rows;
    checks =
      [
        ("fragments were built for every benchmark", total_built > 0);
        ("detailed-sample match rate >= 95% (paper: >98%)", match_ok);
      ];
  }

let prefetch ?settings () : report =
  traced "prefetch" @@ fun () ->
  let rows = Exp_prefetch.compute ?settings () in
  {
    id = "prefetch";
    title = "Prefetching case study: predicted cost vs realized speedup (extension)";
    body = Exp_prefetch.render rows;
    checks = Exp_prefetch.checks rows;
  }

let conclusion ?settings () : report =
  traced "conclusion" @@ fun () ->
  let rows = Exp_prefetch.conclusion_compute ?settings () in
  {
    id = "conclusion";
    title =
      "Conclusion case study: prefetch misses that serially interact with \
       mispredicts (extension)";
    body = Exp_prefetch.conclusion_render rows;
    checks = Exp_prefetch.conclusion_checks rows;
  }

let advisor prepared : report =
  traced "advisor" @@ fun () ->
  let analyses =
    Icost_util.Pool.parallel_map_list
      (fun (p : Runner.prepared) ->
        let oracle = Runner.graph_oracle Config.default p in
        (p.name, Icost_core.Advisor.analyze oracle))
      prepared
  in
  let buf = Buffer.create 2048 in
  let all_recs = ref [] in
  List.iter
    (fun (name, (r : Icost_core.Advisor.report)) ->
      all_recs := r.Icost_core.Advisor.recommendations @ !all_recs;
      Buffer.add_string buf (Printf.sprintf "--- %s ---\n" name);
      Buffer.add_string buf (Icost_core.Advisor.report_to_string r))
    analyses;
  let has k = List.exists k !all_recs in
  {
    id = "advisor";
    title = "Optimization advisor: balanced-machine recommendations (extension)";
    body = Buffer.contents buf;
    checks =
      [
        ("some resource is identified as a bottleneck",
         has (function Icost_core.Advisor.Attack _ -> true | _ -> false));
        ("some resource is a de-optimization candidate",
         has (function Icost_core.Advisor.Deoptimize _ -> true | _ -> false));
        ("serial interactions yield indirect levers",
         has (function Icost_core.Advisor.Indirect_lever _ -> true | _ -> false));
      ];
  }

let ablation prepared : report =
  traced "ablation" @@ fun () ->
  let rows = Exp_profiler_stats.ablation prepared in
  let default_err = List.assoc "default (sig=1000 ctx=10 det=1/13)" rows in
  let sparse_err = List.assoc "sparse detailed (det=1/53)" rows in
  {
    id = "ablation";
    title = "Profiler sampling ablation";
    body = Exp_profiler_stats.render_ablation rows;
    checks =
      [
        ( "sparser detailed sampling does not beat the default",
          sparse_err >= default_err -. 0.5 );
      ];
  }

(** Everything, in paper order.  Workload preparation is shared, then each
    report is computed as an independent job on the {!Icost_util.Pool}
    domain pool (each builds its own oracles over the immutable prepared
    traces); the result list keeps paper order regardless of scheduling. *)
let all_reports ?(settings = Runner.default_settings) () : report list =
  Telemetry.with_span "drive.all_reports" @@ fun () ->
  let prepared = Runner.prepare_all settings in
  let subset names =
    List.filter (fun (p : Runner.prepared) -> List.mem p.name names) prepared
  in
  let t7 = subset Exp_table7.default_benches in
  Icost_util.Pool.parallel_map_list
    (fun compute -> compute ())
    [
      (fun () -> fig1 prepared);
      (fun () -> table4a prepared);
      (fun () -> table4b prepared);
      (fun () -> table4c prepared);
      (fun () -> fig3 prepared);
      (fun () -> table7 t7);
      (fun () -> profstats t7);
      (fun () -> ablation t7);
      (fun () -> prefetch ~settings ());
      (fun () -> conclusion ~settings ());
      (fun () -> advisor prepared);
    ]

(** Checks that did not pass, as [(report id, description)] — the
    machine-readable side of {!check_lines}, so drivers can gate their
    exit status on experiment shape instead of flattening PASS/FAIL into
    prose. *)
let failed_checks (reports : report list) : (string * string) list =
  List.concat_map
    (fun r ->
      List.filter_map (fun (d, ok) -> if ok then None else Some (r.id, d)) r.checks)
    reports

let print_report (r : report) =
  Printf.printf "==================================================================\n";
  Printf.printf "%s [%s]\n" r.title r.id;
  Printf.printf "==================================================================\n\n";
  print_string r.body;
  if r.checks <> [] then begin
    print_newline ();
    print_string (check_lines r.checks)
  end;
  print_newline ()
