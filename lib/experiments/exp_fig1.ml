(** Figure 1: correctly reporting breakdowns.

    Contrasts a traditional single-blame breakdown with the icost-based
    breakdown over three base categories (data-cache misses, branch
    mispredictions, and ALU operations, as in the paper's example).  The
    traditional method cannot account for all cycles; the icost method
    accounts for exactly 100% once every interaction category is included,
    with serial interactions plotted below the axis (Figure 1b). *)

module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Breakdown = Icost_core.Breakdown
module Chart = Icost_report.Chart
module Config = Icost_uarch.Config

type result = {
  bench : string;
  base_pcts : (string * float) list;  (** the three base category costs *)
  interaction_pcts : (string * float) list;  (** the four interaction categories *)
  other : float;
  traditional_total : float;
      (** what a single-blame breakdown sums to (base costs only) *)
}

let categories = [ Category.Dmiss; Category.Bmisp; Category.Shalu ]

let compute ?(cfg = Config.default) (p : Runner.prepared) : result =
  let oracle = Runner.graph_oracle cfg p in
  let base = Cost.query oracle Category.Set.empty in
  let pct v = 100. *. v /. base in
  let base_pcts =
    List.map
      (fun c -> (Category.name c, pct (Cost.cost oracle (Category.Set.singleton c))))
      categories
  in
  let interactions =
    Breakdown.higher_order ~oracle ~max_order:3 categories
    |> List.map (fun (s, v) -> (Category.Set.name s, v))
  in
  let shown =
    List.fold_left (fun a (_, v) -> a +. v) 0. (base_pcts @ interactions)
  in
  {
    bench = p.name;
    base_pcts;
    interaction_pcts = interactions;
    other = 100. -. shown;
    traditional_total = List.fold_left (fun a (_, v) -> a +. v) 0. base_pcts;
  }

let render (r : result) : string =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Figure 1: accounting for execution time on %s (base categories: dmiss, bmisp, shalu)\n\n"
       r.bench);
  Buffer.add_string buf
    (Printf.sprintf
       "Traditional single-blame breakdown sums to %.1f%% -- it cannot account\nfor 100%% of cycles because simultaneous events share the blame.\n\n"
       r.traditional_total);
  Buffer.add_string buf "icost breakdown (sums to exactly 100% incl. Other):\n";
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "  %-18s %6.1f%%\n" name v))
    (r.base_pcts @ r.interaction_pcts @ [ ("Other", r.other) ]);
  Buffer.add_string buf "\nFigure 1b stacked-bar visualization:\n";
  let segments =
    List.map
      (fun (label, value) -> { Chart.label; value })
      (r.base_pcts @ r.interaction_pcts @ [ ("Other", r.other) ])
  in
  Buffer.add_string buf (Chart.stacked_bar segments);
  Buffer.contents buf
