(** Shared machinery for the paper-reproduction experiments.

    Each experiment prepares workloads once (interpret, annotate events,
    slice off the warm-up) and then obtains cost oracles on top of the
    prepared execution:

    - [multisim_oracle]: re-times the trace per idealization (Section 2);
    - [graph_oracle]: one baseline timing run, then graph re-evaluation
      (Section 3, "fullgraph" in Table 7);
    - [profiler_oracle]: shotgun profiling over the baseline run
      (Section 5, "profiler" in Table 7).

    Traces are architectural and machine-independent; event annotations
    depend only on structural parameters (cache/predictor geometry), which
    all experiment configurations share, so preparation is reused across
    machine variants (different latencies, window sizes, bandwidths). *)

module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Program = Icost_isa.Program
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Multisim = Icost_sim.Multisim
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Profile = Icost_profiler.Profile
module Sampler = Icost_profiler.Sampler
module Workload = Icost_workloads.Workload
module Cost = Icost_core.Cost
module Stream_core = Icost_stream.Core
module Stream_source = Icost_stream.Source

type settings = { warmup : int; measure : int; benches : string list }

let default_settings =
  { warmup = 200_000; measure = 30_000; benches = Workload.names }

type prepared = {
  name : string;
  program : Program.t;
  trace : Trace.t;  (** measurement window, renumbered from 0 *)
  evts : Events.evt array;
}

(** Interpret and annotate one workload.  Annotation uses the *structural*
    configuration (caches, TLBs, predictor), which is identical across all
    experiment variants. *)
let c_prepared = Icost_util.Telemetry.counter "runner.workloads_prepared"

let prepare ?(structural = Config.default) (s : settings) (w : Workload.t) :
    prepared =
  let sp = Icost_util.Telemetry.start_span "runner.prepare" in
  let program = w.build () in
  let trace =
    Interp.run
      ~config:{ Interp.default_config with max_instrs = s.warmup + s.measure }
      program
  in
  let evts, _summary = Events.annotate structural trace in
  let len = min s.measure (Trace.length trace - s.warmup) in
  if len <= 0 then
    invalid_arg
      (Printf.sprintf "Runner.prepare: %s produced only %d instructions" w.name
         (Trace.length trace));
  let trace = Trace.slice trace ~start:s.warmup ~len in
  let evts = Events.slice evts ~start:s.warmup ~len in
  Icost_util.Telemetry.incr c_prepared;
  if Icost_util.Telemetry.enabled () then
    Icost_util.Telemetry.end_span sp
      ~attrs:[ ("bench", w.name); ("instrs", string_of_int len) ]
  else Icost_util.Telemetry.end_span sp;
  { name = w.name; program; trace; evts }

(* Preparation (interpret + annotate + slice) is independent per workload
   and shares no mutable state, so it fans out across the domain pool;
   results keep the order of [s.benches]. *)
let prepare_all ?structural (s : settings) : prepared list =
  Icost_util.Telemetry.with_span "runner.prepare_all" (fun () ->
      Icost_util.Pool.parallel_map_list
        (fun n -> prepare ?structural s (Workload.find_exn n))
        s.benches)

(* --- oracles --- *)

(* Every oracle constructor below accepts the expensive intermediates it
   would otherwise recompute ([?baseline], the graph passed explicitly):
   a resident server ({!Icost_service}) caches prepared workloads and
   baseline runs across requests and across engines on the same
   (workload, config) key, so "prepare once, answer many" needs the
   rebuild-per-call and the reuse path to be the same code. *)

let baseline_run (cfg : Config.t) (p : prepared) : Ooo.result =
  Ooo.run { cfg with ideal = Config.no_ideal } p.trace p.evts

let multisim_oracle (cfg : Config.t) (p : prepared) : Cost.oracle =
  Cost.memoize (Multisim.oracle cfg p.trace p.evts)

let graph_of ?baseline (cfg : Config.t) (p : prepared) : Graph.t =
  let result =
    match baseline with Some r -> r | None -> baseline_run cfg p
  in
  Build.of_sim cfg p.trace p.evts result

let graph_oracle ?baseline (cfg : Config.t) (p : prepared) : Cost.oracle =
  Cost.memoize (Build.oracle (graph_of ?baseline cfg p))

let profiler_run ?opts ?baseline (cfg : Config.t) (p : prepared) : Profile.t =
  let result =
    match baseline with Some r -> r | None -> baseline_run cfg p
  in
  Profile.profile ?opts cfg p.program p.trace p.evts result

let profiler_oracle ?opts ?baseline (cfg : Config.t) (p : prepared) :
    Cost.oracle =
  Cost.memoize (Profile.oracle (profiler_run ?opts ?baseline cfg p))

(* The streaming engine re-analyzes the prepared window in bounded-memory
   segments; on an already-sliced window it is bit-identical to the
   fullgraph on every subset (the [stream-matches-monolithic] law), so a
   resident server can offer it as a drop-in engine whose memory stays
   O(segment) however long the measure window grows. *)
let stream_run ?segment_insns (cfg : Config.t) (p : prepared) :
    Stream_core.result =
  Stream_core.analyze ?segment_insns cfg
    (Stream_source.of_arrays p.trace.Trace.instrs p.evts)

let stream_oracle ?segment_insns (cfg : Config.t) (p : prepared) : Cost.oracle
    =
  Cost.memoize (Stream_core.oracle (stream_run ?segment_insns cfg p))

type oracle_kind = Multisim | Fullgraph | Profiler | Streamed

let oracle_kind_name = function
  | Multisim -> "multisim"
  | Fullgraph -> "fullgraph"
  | Profiler -> "profiler"
  | Streamed -> "stream"

(* [?seed] re-seeds the profiler's sampling PRNG (the only source of
   randomness past preparation; interpretation and annotation are
   deterministic by construction).  [?opts] wins when both are given. *)
let sampler_opts ?opts ?seed () =
  match (opts, seed) with
  | Some o, _ -> Some o
  | None, Some seed -> Some { Sampler.default_opts with seed }
  | None, None -> None

let oracle_of_kind ?opts ?seed ?baseline kind cfg p =
  match kind with
  | Multisim -> multisim_oracle cfg p
  | Fullgraph -> graph_oracle ?baseline cfg p
  | Profiler -> profiler_oracle ?opts:(sampler_opts ?opts ?seed ()) ?baseline cfg p
  | Streamed -> stream_oracle cfg p
