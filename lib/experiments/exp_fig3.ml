(** Figure 3 and Section 4.3: validating icost conclusions against a
    conventional sensitivity study.

    The paper's corollary: because EP (load latency) edges and CD (window)
    edges are in series, dl1 and win interact serially, so increasing the
    window size must help *more* when the L1 latency is higher.  Figure 3
    plots speedup from growing the window at L1 latencies 1 and 4; the
    paper quotes ~50% greater speedup for the 64->128 step at latency 4.

    We reproduce the study by direct simulation (no graphs): a window sweep
    at each L1 latency, plus the same corollary for the issue-wakeup loop
    (Section 4.2: gap speeds up 12% vs 18% for 64->128 at wakeup 1 vs 2).
    [agreement] then checks, per benchmark, that the sign of the measured
    icost predicts the sensitivity result — the Section 4.3 comparison. *)

module Config = Icost_uarch.Config
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Ooo = Icost_sim.Ooo
module Chart = Icost_report.Chart
module Table = Icost_report.Table

type point = { window : int; dl1_lat : int; cycles : int }

type bench_sweep = {
  bench : string;
  points : point list;
  icost_dl1_win : float;  (** pairwise icost (graph), % of baseline *)
}

type result = { windows : int list; dl1_lats : int list; sweeps : bench_sweep list }

let default_windows = [ 32; 48; 64; 96; 128; 192; 256 ]
let default_dl1_lats = [ 1; 2; 4 ]

let compute ?(windows = default_windows) ?(dl1_lats = default_dl1_lats)
    (prepared : Runner.prepared list) : result =
  let sweeps =
    List.map
      (fun (p : Runner.prepared) ->
        let points =
          List.concat_map
            (fun dl1_lat ->
              List.map
                (fun window ->
                  let cfg = { Config.default with window_size = window; dl1_lat } in
                  let cycles = Ooo.cycles cfg p.trace p.evts in
                  { window; dl1_lat; cycles })
                windows)
            dl1_lats
        in
        (* icost(dl1, win) measured on the graph at the 4-cycle-dl1 machine
           with the baseline 64-entry window *)
        let oracle = Runner.graph_oracle Config.loop_dl1 p in
        let base = Cost.query oracle Category.Set.empty in
        let icost_dl1_win =
          100. *. Cost.icost_pair oracle Category.Dl1 Category.Win /. base
        in
        { bench = p.name; points; icost_dl1_win })
      prepared
  in
  { windows; dl1_lats; sweeps }

let cycles_at (s : bench_sweep) ~window ~dl1_lat =
  let p = List.find (fun p -> p.window = window && p.dl1_lat = dl1_lat) s.points in
  p.cycles

(** Speedup (%) from growing the window [w0 -> w1] at a given L1 latency. *)
let window_speedup (s : bench_sweep) ~w0 ~w1 ~dl1_lat =
  let c0 = cycles_at s ~window:w0 ~dl1_lat in
  let c1 = cycles_at s ~window:w1 ~dl1_lat in
  100. *. (float_of_int c0 /. float_of_int c1 -. 1.)

(** Section 4.3 agreement: serial dl1+win icost should predict a larger
    window benefit at higher L1 latency.  Benchmarks whose interaction is
    negligible (|icost| < threshold) are expected to show little
    difference and are counted as agreeing either way. *)
let agreement ?(threshold = 1.0) (r : result) ~w0 ~w1 ~lat_lo ~lat_hi =
  List.map
    (fun s ->
      let sp_lo = window_speedup s ~w0 ~w1 ~dl1_lat:lat_lo in
      let sp_hi = window_speedup s ~w0 ~w1 ~dl1_lat:lat_hi in
      let serial = s.icost_dl1_win < -.threshold in
      let agrees = if serial then sp_hi > sp_lo -. 0.5 else true in
      (s.bench, s.icost_dl1_win, sp_lo, sp_hi, agrees))
    r.sweeps

let render (r : result) ~w0 ~w1 : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Figure 3: speedup from increasing window size at different L1 latencies\n\n";
  (* chart: geomean speedup vs window, one series per latency *)
  let series =
    List.map
      (fun dl1_lat ->
        let points =
          List.map
            (fun w ->
              let speedups =
                List.map
                  (fun s ->
                    let c0 = cycles_at s ~window:(List.hd r.windows) ~dl1_lat in
                    let c = cycles_at s ~window:w ~dl1_lat in
                    float_of_int c0 /. float_of_int c)
                  r.sweeps
              in
              (float_of_int w, 100. *. (Icost_util.Stats.geomean speedups -. 1.)))
            r.windows
        in
        { Chart.name = Printf.sprintf "dl1=%d" dl1_lat; points })
      r.dl1_lats
  in
  Buffer.add_string buf
    (Chart.line_chart ~x_label:"window size" ~y_label:"geomean speedup % (vs smallest window)"
       series);
  (* table: the paper's quoted comparison for the w0->w1 step *)
  let lat_lo = List.hd r.dl1_lats in
  let lat_hi = List.nth r.dl1_lats (List.length r.dl1_lats - 1) in
  Buffer.add_string buf
    (Printf.sprintf
       "\nWindow %d->%d speedup by benchmark (icost(dl1+win) measured at dl1=4):\n" w0 w1);
  let t =
    Table.create
      ~headers:
        [ "bench"; Printf.sprintf "dl1=%d" lat_lo; Printf.sprintf "dl1=%d" lat_hi;
          "icost(dl1,win)%"; "agrees" ]
  in
  List.iter
    (fun (bench, ic, sp_lo, sp_hi, agrees) ->
      Table.add_row t
        [ bench; Printf.sprintf "%.1f%%" sp_lo; Printf.sprintf "%.1f%%" sp_hi;
          Table.cell_f ~signed:true ic; (if agrees then "yes" else "NO") ])
    (agreement r ~w0 ~w1 ~lat_lo ~lat_hi);
  Buffer.add_string buf (Table.render t);
  Buffer.contents buf

(* --- the Section 4.2 wakeup corollary: window speedup at wakeup 1 vs 2 --- *)

type wakeup_point = { bench_w : string; sp_wakeup1 : float; sp_wakeup2 : float }

let wakeup_corollary ?(w0 = 64) ?(w1 = 128) (prepared : Runner.prepared list) :
    wakeup_point list =
  List.map
    (fun (p : Runner.prepared) ->
      let speedup wakeup_latency =
        let cycles w =
          Ooo.cycles
            { Config.default with window_size = w; wakeup_latency }
            p.trace p.evts
        in
        100. *. (float_of_int (cycles w0) /. float_of_int (cycles w1) -. 1.)
      in
      { bench_w = p.name; sp_wakeup1 = speedup 1; sp_wakeup2 = speedup 2 })
    prepared

let render_wakeup (pts : wakeup_point list) : string =
  let t = Table.create ~headers:[ "bench"; "speedup@wakeup=1"; "speedup@wakeup=2" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [ p.bench_w; Printf.sprintf "%.1f%%" p.sp_wakeup1;
          Printf.sprintf "%.1f%%" p.sp_wakeup2 ])
    pts;
  "Section 4.2 corollary: window 64->128 speedup at issue-wakeup 1 vs 2\n"
  ^ Table.render t
