(** Tables 4a/4b/4c: CPI-contribution breakdowns for the three long-pipeline
    case studies (Section 4).

    Each variant is a machine knob plus a focus category:

    - Table 4a: four-cycle level-one data cache, focus [dl1];
    - Table 4b: two-cycle issue-wakeup loop, focus [shalu];
    - Table 4c: fifteen-cycle branch-misprediction loop, focus [bmisp].

    The breakdown shows every base category cost plus all pairwise
    interaction costs with the focus category, in percent of execution
    time, with an Other row completing the account to 100% — exactly the
    layout of the paper's Table 4.  Like the paper, breakdowns are computed
    on the dependence graph built during simulation. *)

module Category = Icost_core.Category
module Breakdown = Icost_core.Breakdown
module Config = Icost_uarch.Config
module Table = Icost_report.Table

type variant = { label : string; cfg : Config.t; focus : Category.t }

let table4a = { label = "Table 4a: four-cycle level-one data cache"; cfg = Config.loop_dl1; focus = Category.Dl1 }
let table4b = { label = "Table 4b: two-cycle issue-wakeup loop"; cfg = Config.loop_wakeup; focus = Category.Shalu }
let table4c = { label = "Table 4c: 15-cycle branch-mispredict loop"; cfg = Config.loop_bmisp; focus = Category.Bmisp }

type result = {
  variant : variant;
  breakdowns : (string * Breakdown.t) list;  (** per benchmark *)
}

(* one independent oracle + breakdown per workload: fan out on the pool *)
let compute ?(kind = Runner.Fullgraph) (v : variant)
    (prepared : Runner.prepared list) : result =
  let breakdowns =
    Icost_util.Pool.parallel_map_list
      (fun p ->
        let oracle = Runner.oracle_of_kind kind v.cfg p in
        (p.Runner.name, Breakdown.focus ~oracle ~focus_cat:v.focus))
      prepared
  in
  { variant = v; breakdowns }

(** Render in the paper's layout: categories as rows, benchmarks as
    columns. *)
let render (r : result) : string =
  let benches = List.map fst r.breakdowns in
  let t = Table.create ~headers:("Category" :: benches) in
  let kinds =
    match r.breakdowns with
    | [] -> []
    | (_, b) :: _ -> List.map (fun (row : Breakdown.row) -> row.kind) b.rows
  in
  let num_base = List.length Category.all in
  List.iteri
    (fun i kind ->
      let label =
        match kind with
        | Breakdown.Base c -> Category.name c
        | Breakdown.Pair (a, b) -> Category.name a ^ "+" ^ Category.name b
        | Breakdown.Other -> "Other"
      in
      let signed = match kind with Breakdown.Base _ -> false | _ -> true in
      let cells =
        List.map
          (fun (_, b) ->
            match Breakdown.percent_of b kind with
            | Some v -> Table.cell_f ~signed v
            | None -> "-")
          r.breakdowns
      in
      Table.add_row t (label :: cells);
      if i = num_base - 1 then Table.add_separator t)
    kinds;
  Table.add_separator t;
  Table.add_row t
    ("Total" :: List.map (fun (_, b) -> Table.cell_f (Breakdown.total b)) r.breakdowns);
  Printf.sprintf "%s\n(percent of execution time; negative = serial interaction)\n\n%s"
    r.variant.label (Table.render t)

(** Headline checks against the paper's qualitative findings; returns
    (description, holds) pairs used by tests and EXPERIMENTS.md. *)
let shape_checks (r : result) : (string * bool) list =
  let pct bench kind =
    match List.assoc_opt bench r.breakdowns with
    | None -> None
    | Some b -> Breakdown.percent_of b kind
  in
  let avg kind =
    let vs = List.filter_map (fun (b, _) -> pct b kind) r.breakdowns in
    if vs = [] then 0. else List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)
  in
  let focus = r.variant.focus in
  match focus with
  | Category.Dl1 ->
    [
      ("dl1 cost is significant (avg > 5%)", avg (Breakdown.Base Category.Dl1) > 5.);
      ("dl1+win interaction is serial on average", avg (Breakdown.Pair (Category.Dl1, Category.Win)) < 0.);
      ("dl1+shalu interaction is serial on average", avg (Breakdown.Pair (Category.Dl1, Category.Shalu)) < 0.);
      ("dl1+bw interaction is parallel on average", avg (Breakdown.Pair (Category.Dl1, Category.Bw)) > 0.);
      ("dl1+dmiss interaction is small (|avg| < 5%)", Float.abs (avg (Breakdown.Pair (Category.Dl1, Category.Dmiss))) < 5.);
    ]
  | Category.Shalu ->
    [
      ("shalu+win interaction is serial on average", avg (Breakdown.Pair (Category.Shalu, Category.Win)) < 0.);
      ("shalu+bw interaction is parallel on average", avg (Breakdown.Pair (Category.Shalu, Category.Bw)) > 0.);
    ]
  | Category.Bmisp ->
    [
      ("bmisp+win interaction is parallel on average", avg (Breakdown.Pair (Category.Bmisp, Category.Win)) > 0.);
      ( "bmisp+dmiss is serial for mcf",
        match pct "mcf" (Breakdown.Pair (Category.Bmisp, Category.Dmiss)) with
        | Some v -> v < 0.
        | None -> true );
    ]
  | _ -> []
