(** Prefetching case study (extension; Sections 1-2 application).

    The paper motivates cost as "how much an optimization helps before
    further improvement is stopped by a secondary bottleneck."  This
    experiment closes that loop with a *real* optimization instead of an
    idealization: enable a stride prefetcher, re-annotate, re-simulate,
    and compare

    - the {b predicted} benefit: the miss cost of exactly the events the
      prefetcher ends up removing (measured on the baseline graph with
      Tune et al.'s edge editing);
    - the {b realized} benefit: the measured end-to-end speedup.

    The realized speedup should approach but not exceed the predicted cost
    (the prediction idealizes latency to a hit; a real prefetcher can at
    best do the same), and the post-optimization breakdown should show the
    secondary bottleneck absorbing the freed share. *)

module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Workload = Icost_workloads.Workload
module Table = Icost_report.Table

type row = {
  bench : string;
  base_cycles : int;
  pf_cycles : int;
  realized_speedup_pct : float;
  predicted_cost_pct : float;  (** graph cost of the misses the prefetcher removed *)
  misses_before : int;
  misses_after : int;
  dmiss_share_before : float;
  dmiss_share_after : float;
}

let study_one (s : Runner.settings) (cfg : Config.t) name : row =
  let w = Workload.find_exn name in
  let program = w.build () in
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = s.warmup + s.measure }
      program
  in
  let annotate prefetch =
    let evts, _ = Events.annotate ~prefetch cfg trace in
    Events.slice evts ~start:s.warmup ~len:s.measure
  in
  let evts = annotate Events.no_prefetch in
  let evts_pf = annotate { Events.no_prefetch with stride_loads = true } in
  let mtrace = Trace.slice trace ~start:s.warmup ~len:s.measure in
  let result = Ooo.run cfg mtrace evts in
  let result_pf = Ooo.run cfg mtrace evts_pf in
  let realized =
    100. *. (float_of_int result.cycles /. float_of_int result_pf.cycles -. 1.)
  in
  (* predicted: on the BASELINE graph, idealize exactly the misses that the
     prefetcher removed (missing without prefetch, hitting with it) *)
  let graph = Build.of_sim cfg mtrace evts result in
  let removed = Hashtbl.create 256 in
  Array.iteri
    (fun i (e : Events.evt) ->
      if e.dl1_miss && not evts_pf.(i).dl1_miss then Hashtbl.replace removed i ())
    evts;
  let override (e : Graph.edge) =
    match e.kind with
    | Graph.EP when Hashtbl.mem removed (Graph.seq_of_node e.dst) -> Some cfg.dl1_lat
    | Graph.PP when Hashtbl.mem removed (Graph.seq_of_node e.src) -> Some 0
    | _ -> None
  in
  let base_cp = Graph.critical_length graph in
  let predicted =
    100.
    *. float_of_int (base_cp - Graph.critical_length ~override graph)
    /. float_of_int base_cp
  in
  let dmiss_share evts result =
    let g = Build.of_sim cfg mtrace evts result in
    let oracle = Cost.memoize (Build.oracle g) in
    100.
    *. Cost.cost oracle (Category.Set.singleton Category.Dmiss)
    /. Cost.query oracle Category.Set.empty
  in
  let count evts =
    Array.fold_left (fun a (e : Events.evt) -> if e.dl1_miss then a + 1 else a) 0 evts
  in
  {
    bench = name;
    base_cycles = result.cycles;
    pf_cycles = result_pf.cycles;
    realized_speedup_pct = realized;
    predicted_cost_pct = predicted;
    misses_before = count evts;
    misses_after = count evts_pf;
    dmiss_share_before = dmiss_share evts result;
    dmiss_share_after = dmiss_share evts_pf result_pf;
  }

let default_benches = [ "gap"; "gzip"; "gcc"; "vpr"; "twolf"; "mcf" ]

let compute ?(settings = Runner.default_settings) ?(cfg = Config.default)
    ?(benches = default_benches) () : row list =
  List.map (study_one settings cfg) benches

let render (rows : row list) : string =
  let t =
    Table.create
      ~headers:
        [ "bench"; "misses"; "pf-misses"; "speedup"; "predicted"; "dmiss% before";
          "dmiss% after" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.bench; string_of_int r.misses_before; string_of_int r.misses_after;
          Printf.sprintf "%.1f%%" r.realized_speedup_pct;
          Printf.sprintf "%.1f%%" r.predicted_cost_pct;
          Table.cell_f r.dmiss_share_before; Table.cell_f r.dmiss_share_after ])
    rows;
  "Stride-prefetching case study: predicted miss cost vs realized speedup\n"
  ^ Table.render t

(** Shape checks: the prefetcher removes misses on stride-friendly codes;
    the realized speedup tracks (and does not wildly exceed) the predicted
    cost of the removed events. *)
let checks (rows : row list) : (string * bool) list =
  let stride_friendly = List.filter (fun r -> List.mem r.bench [ "gap"; "gcc"; "vpr" ]) rows in
  [
    ( "stride prefetching removes most misses on streaming kernels",
      List.for_all (fun r -> r.misses_after * 2 < r.misses_before) stride_friendly );
    ( "realized speedup is positive where misses were removed",
      List.for_all
        (fun r -> r.misses_before - r.misses_after < 50 || r.realized_speedup_pct > -0.5)
        rows );
    ( "realized speedup does not exceed prediction by more than 5 points",
      List.for_all (fun r -> r.realized_speedup_pct <= (1.3 *. r.predicted_cost_pct) +. 5.) rows );
    ( "dmiss share shrinks where misses were removed",
      List.for_all
        (fun r ->
          r.misses_after * 2 >= r.misses_before
          || r.dmiss_share_after <= r.dmiss_share_before +. 1.)
        stride_friendly );
  ]

(* ------------------------------------------------------------------ *)
(* Conclusion case study: "feedback-directed compilers could favor
   prefetching cache misses that serially interact with branch
   mispredicts."  We rank each static load's misses by their interaction
   cost with the bmisp category, then validate the ranking: perfectly
   prefetching a load with a serial bmisp interaction should also reduce
   the machine's measured misprediction cost. *)
(* ------------------------------------------------------------------ *)

module Static_costs = Icost_depgraph.Static_costs

type conclusion_row = {
  cbench : string;
  load_ix : int;  (** static index of the most bmisp-serial missing load *)
  load_cost_pct : float;
  bmisp_icost_pct : float;  (** negative = serial with mispredictions *)
  bmisp_cost_before : float;  (** multisim bmisp cost, cycles *)
  bmisp_cost_after : float;  (** ... after perfectly prefetching the load *)
}

let conclusion_one (s : Runner.settings) (cfg : Config.t) name : conclusion_row option =
  let w = Workload.find_exn name in
  let program = w.build () in
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = s.warmup + s.measure }
      program
  in
  let evts_full, _ = Events.annotate cfg trace in
  let mtrace = Trace.slice trace ~start:s.warmup ~len:s.measure in
  let evts = Events.slice evts_full ~start:s.warmup ~len:s.measure in
  let result = Ooo.run cfg mtrace evts in
  let graph = Build.of_sim cfg mtrace evts result in
  let sc = Static_costs.create cfg mtrace evts graph in
  match Static_costs.missing_loads sc with
  | [] -> None
  | loads ->
    (* the missing load whose misses interact most serially with bmisp *)
    let load_ix, ic =
      List.fold_left
        (fun (bix, bic) (ix, _) ->
          let ic = Static_costs.category_icost sc ix Category.Bmisp in
          if ic < bic then (ix, ic) else (bix, bic))
        (-1, max_int) loads
    in
    if load_ix < 0 then None
    else begin
      let base = float_of_int sc.base in
      let pct v = 100. *. float_of_int v /. base in
      (* validation: measure the simulator's bmisp cost before and after
         perfectly prefetching that load (its misses become hits in the
         event stream) *)
      let prefetched =
        Array.mapi
          (fun i (e : Events.evt) ->
            if
              e.dl1_miss
              && (Trace.get mtrace i).static_ix = load_ix
            then { e with dl1_miss = false; dl2_miss = false }
            else e)
          evts
      in
      (* drop stale share_src references to the removed misses *)
      let prefetched =
        Array.map
          (fun (e : Events.evt) ->
            match e.share_src with
            | Some src when not prefetched.(src).dl1_miss ->
              { e with share_src = None }
            | _ -> e)
          prefetched
      in
      (* bmisp cost in absolute cycles (percentages would compare against
         different baselines once the load is prefetched) *)
      let bmisp_cost evts =
        let o = Icost_core.Cost.memoize (Icost_sim.Multisim.oracle cfg mtrace evts) in
        Icost_core.Cost.cost o (Category.Set.singleton Category.Bmisp)
      in
      Some
        {
          cbench = name;
          load_ix;
          load_cost_pct = pct (Static_costs.miss_cost sc [ load_ix ]);
          bmisp_icost_pct = pct ic;
          bmisp_cost_before = bmisp_cost evts;
          bmisp_cost_after = bmisp_cost prefetched;
        }
    end

let conclusion_default_benches = [ "mcf"; "twolf"; "gzip"; "gcc" ]

let conclusion_compute ?(settings = Runner.default_settings)
    ?(cfg = Config.default) ?(benches = conclusion_default_benches) () :
    conclusion_row list =
  List.filter_map (conclusion_one settings cfg) benches

let conclusion_render (rows : conclusion_row list) : string =
  let t =
    Table.create
      ~headers:
        [ "bench"; "load"; "miss cost"; "icost(load,bmisp)"; "bmisp before";
          "bmisp after" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.cbench; Printf.sprintf "@%d" r.load_ix;
          Printf.sprintf "%.1f%%" r.load_cost_pct;
          Table.cell_f ~signed:true r.bmisp_icost_pct;
          Table.cell_f r.bmisp_cost_before; Table.cell_f r.bmisp_cost_after ])
    rows;
  "Conclusion case study: per-load misses vs branch-misprediction cost\n\
   (a serial icost predicts that prefetching the load also cuts bmisp cost)\n"
  ^ Table.render t

let conclusion_checks (rows : conclusion_row list) : (string * bool) list =
  let serial = List.filter (fun r -> r.bmisp_icost_pct < -1.) rows in
  [
    ( "at least one benchmark has a load serially interacting with bmisp",
      serial <> [] );
    ( "prefetching a bmisp-serial load reduces measured bmisp cost (cycles)",
      List.for_all
        (fun r -> r.bmisp_cost_after < (0.95 *. r.bmisp_cost_before) +. 10.)
        serial );
  ]
