(** Bounded-memory streaming analysis core: consumes a {!Source.t} in
    fixed-size segments, times each with the bounded-state simulator,
    compiles it into a dependence-graph fragment with pinned boundary
    nodes, and aggregates the absolute execution time of {e every}
    idealization subset online.  Because all graph edges point forward,
    the segmented recurrence continues the monolithic one exactly — the
    aggregate is bit-identical to whole-trace analysis (pinned by the
    [stream-matches-monolithic] conformance law) while peak memory stays
    O(segment + window), independent of trace length. *)

module Config = Icost_uarch.Config
module Category = Icost_core.Category
module Cost = Icost_core.Cost

exception Segment_fault of int
(** The [stream_segment] fault point fired while opening the given
    segment; no partial aggregate is published. *)

type seg_stat = {
  seg_id : int;
  seg_start : int;  (** global index of the segment's first instruction *)
  seg_len : int;
  cum_cycles : int;  (** baseline cycle frontier after this segment *)
  heap_words : int;  (** major-heap words sampled after this segment *)
}

type result = {
  times : int array;
      (** absolute execution time (cycles) per idealization subset,
          indexed by {!Category.Set.t}; length [2^Category.count] *)
  instrs : int;
  segments : int;
  segment_insns : int;
  cycles : int;  (** baseline time, [times.(Category.Set.empty)] *)
  sim_cycles : int;  (** streaming simulator's own cycle count *)
  peak_heap_words : int;
  seg_stats : seg_stat list;  (** in segment order *)
}

val default_segment_insns : int
(** 8192: large enough to amortize per-segment fragment compilation,
    small enough that a per-job slab stays ~10 MB. *)

val analyze : ?segment_insns:int -> Config.t -> Source.t -> result
(** Stream the source to exhaustion.  Deterministic and invariant under
    both [segment_insns] and the pool job count (each 32-lane chunk is an
    independent recurrence over a disjoint lane range).
    @raise Segment_fault when the [stream_segment] injection point fires. *)

val oracle : result -> Cost.oracle
(** Table-backed cost oracle over the streamed aggregate: every subset
    query is answered from [times], so all downstream breakdown/icost
    machinery runs unchanged over arbitrarily long traces. *)

val peak_mb : result -> float
(** [peak_heap_words] in megabytes. *)

(** {2 Process-wide tallies}

    Monotone counters over every [analyze] run in this process,
    independent of the telemetry sink; the service layer surfaces them in
    its status body ([segments] / [stream_peak_mb]). *)

val segments_total : unit -> int
(** Segments analyzed since process start. *)

val peak_mb_hwm : unit -> float
(** High-water mark of [peak_heap_words] across all runs, in MB. *)
