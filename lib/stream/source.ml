(** Streaming item sources: a pull interface over the committed dynamic
    stream, pairing each instruction with its event annotation.

    [of_program] chains the interpreter stepper and the event annotator so
    an unbounded run is produced one instruction at a time — no
    {!Icost_isa.Trace.t} is ever materialized.  The warm-up prefix is
    interpreted and classified (warming caches, TLBs and the branch
    predictor) but not yielded, and the measured window is renumbered from
    0 with dangling producer references dropped — exactly the semantics of
    [Trace.slice]/[Events.slice], so downstream consumers see the same
    stream the monolithic pipeline would. *)

module Trace = Icost_isa.Trace
module Interp = Icost_isa.Interp
module Program = Icost_isa.Program
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events

type t = unit -> (Trace.dyn * Events.evt) option

let of_arrays (instrs : Trace.dyn array) (evts : Events.evt array) : t =
  let n = min (Array.length instrs) (Array.length evts) in
  let i = ref 0 in
  fun () ->
    if !i >= n then None
    else begin
      let k = !i in
      incr i;
      Some (instrs.(k), evts.(k))
    end

(* Renumbering matching [Trace.slice]: measured seq from 0, producer
   references into the warm-up prefix dropped (their effects are warmed
   state, not modeled dependences). *)
let renumber_dyn ~start (d : Trace.dyn) : Trace.dyn =
  let remap j = if j >= start then Some (j - start) else None in
  {
    d with
    seq = d.seq - start;
    reg_deps =
      List.filter_map (fun (r, p) -> Option.map (fun p -> (r, p)) (remap p)) d.reg_deps;
    mem_dep = Option.bind d.mem_dep remap;
  }

let renumber_evt ~start (e : Events.evt) : Events.evt =
  let remap j = if j >= start then Some (j - start) else None in
  { e with share_src = Option.bind e.share_src remap }

let of_program ?prefetch (cfg : Config.t) (p : Program.t) ~warmup ~max_insns : t =
  let warmup = max 0 warmup in
  let icfg = { Interp.default_config with max_instrs = warmup + max_insns } in
  let stepper = Interp.stepper ~config:icfg p in
  let ann = Events.annotator ?prefetch cfg in
  let rec burn k =
    if k > 0 then
      match Interp.step stepper with
      | Some d ->
        ignore (Events.annotate_next ann d);
        burn (k - 1)
      | None -> ()
  in
  burn warmup;
  fun () ->
    match Interp.step stepper with
    | None -> None
    | Some d ->
      let e = Events.annotate_next ann d in
      Some (renumber_dyn ~start:warmup d, renumber_evt ~start:warmup e)
