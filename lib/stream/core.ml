(** Bounded-memory streaming analysis core.

    The pipeline consumes a {!Source.t} in fixed-size segments.  Each
    segment is timed by the bounded-state simulator
    ({!Icost_sim.Ooo.Stream}), compiled into a dependence-graph fragment
    with {!Icost_depgraph.Build.emit} (the exact monolithic edge-emission
    logic), and priced for {e all} [2^Category.count] idealization subsets
    with {!Icost_depgraph.Graph.eval_lanes_pinned}.

    {b Why segmented evaluation is exact.}  Every edge of the dependence
    graph points forward ([src < dst]), so node arrival times are final
    after one pass and the max-plus recurrence can be check-pointed at any
    instruction boundary.  A segment fragment pins the previous
    [B = max (window, fetch_bw, commit_bw)] instructions' node times as
    boundary nodes — every structural edge (DD/PD/FBW/CD/CC/CBW, lookback
    [<= B]) then lands on a real node — while the unbounded-lookback data
    edges (PR register/store producers, PP line sharing) become per-lane
    floors carried in footprint-bounded maps (last writer per register,
    last store per address, last missing load per line).  Taken-branch FBW
    edges whose source predates the prefix are dropped: the source's
    dispatch is dominated by the in-prefix [D(i - fetch_bw)] source of the
    regular FBW edge (same base, same removal category, D monotone per
    lane), so the drop is exact.  The aggregate over any trace is
    therefore {e bit-identical} to the monolithic evaluation — the
    [stream-matches-monolithic] law pins this with [Exact] tolerance.

    Peak memory is O(segment + window): the per-segment slab (the largest
    allocation, ~[5 * (B + segment) * 32] ints per pool job) is recycled
    through a free list, and all carries are bounded by the data footprint
    of the workload, not the trace length. *)

module Trace = Icost_isa.Trace
module Isa = Icost_isa.Isa
module Config = Icost_uarch.Config
module Ooo = Icost_sim.Ooo
module Graph = Icost_depgraph.Graph
module Build = Icost_depgraph.Build
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Pool = Icost_util.Pool
module Telemetry = Icost_util.Telemetry
module Fault = Icost_util.Fault

exception Segment_fault of int
(** Raised when the [stream_segment] fault point fires while opening a
    segment; carries the segment id.  The analysis aborts without
    publishing any partial aggregate. *)

type seg_stat = {
  seg_id : int;
  seg_start : int;  (** global index of the segment's first instruction *)
  seg_len : int;
  cum_cycles : int;  (** baseline cycle frontier after this segment *)
  heap_words : int;  (** major-heap words sampled after this segment *)
}

type result = {
  times : int array;
      (** absolute execution time (cycles) per idealization subset,
          indexed by {!Category.Set.t}; length [2^Category.count] *)
  instrs : int;
  segments : int;
  segment_insns : int;
  cycles : int;  (** baseline time, [times.(Category.Set.empty)] *)
  sim_cycles : int;  (** streaming simulator's own cycle count *)
  peak_heap_words : int;
  seg_stats : seg_stat list;  (** in segment order *)
}

let fault_segment = Fault.point "stream_segment"
let c_segments = Telemetry.counter "stream.segments"
let c_instrs = Telemetry.counter "stream.instructions"

(* Process-wide tallies, independent of the telemetry sink: the service
   layer reports these in its status body. *)
let g_segments = Atomic.make 0
let g_peak_words = Atomic.make 0

let rec bump_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then bump_max a v

let segments_total () = Atomic.get g_segments

let peak_mb_hwm () =
  float_of_int (Atomic.get g_peak_words * (Sys.word_size / 8))
  /. (1024. *. 1024.)

let lanes = 32

(* Per-job evaluation scratch, recycled across segments so peak memory is
   [jobs * slab], not [segments * slab]. *)
type scratch = {
  slab : int array;
  latbuf : int array;
  lset : int array;
  ktab : int array array;
}

let default_segment_insns = 8192

let analyze ?(segment_insns = default_segment_insns) (cfg : Config.t)
    (src : Source.t) : result =
  let segment_insns = max 1 segment_insns in
  let p = Build.params_of_config cfg in
  let nsets = 1 lsl Category.count in
  let sets = Array.init nsets (fun s -> s) in
  let bmax = max p.Build.window (max p.Build.fetch_bw p.Build.commit_bw) in
  let wake = p.Build.wakeup_latency - 1 in
  let sim = Ooo.Stream.create cfg in
  (* boundary carries: node-time rows are [nsets] lanes of absolute
     arrival times *)
  let pin = ref (Array.make (5 * bmax * nsets) 0) in
  let pin_next = ref (Array.make (5 * bmax * nsets) 0) in
  let pin_count = ref 0 in
  let reg_rows : int array option array = Array.make Isa.num_regs None in
  let store_rows : (int, int array) Hashtbl.t = Hashtbl.create 256 in
  let line_rows : (int, int array) Hashtbl.t = Hashtbl.create 256 in
  let taken_hist : int Queue.t = Queue.create () in
  let prev_mispredict = ref false in
  let count = ref 0 in
  let seg_id = ref 0 in
  let seg_stats = ref [] in
  let peak_heap = ref 0 in
  let n_nodes_max = 5 * (bmax + segment_insns) in
  let scratch_mutex = Mutex.create () in
  let scratch_free : scratch list ref = ref [] in
  let alloc_scratch () =
    let keep_all = Array.make lanes (-1) in
    let ktab = Array.make 256 keep_all in
    for ci = 0 to Category.count - 1 do
      ktab.(1 lsl ci) <- Array.make lanes 0
    done;
    {
      slab = Array.make (n_nodes_max * lanes) 0;
      latbuf = Array.make lanes 0;
      lset = Array.make lanes 0;
      ktab;
    }
  in
  let take_scratch () =
    Mutex.lock scratch_mutex;
    match !scratch_free with
    | s :: tl ->
      scratch_free := tl;
      Mutex.unlock scratch_mutex;
      s
    | [] ->
      Mutex.unlock scratch_mutex;
      alloc_scratch ()
  in
  let give_scratch s =
    Mutex.lock scratch_mutex;
    scratch_free := s :: !scratch_free;
    Mutex.unlock scratch_mutex
  in
  let read_segment () =
    let rec go acc k =
      if k = segment_insns then List.rev acc
      else match src () with None -> List.rev acc | Some it -> go (it :: acc) (k + 1)
    in
    Array.of_list (go [] 0)
  in
  let rec loop () =
    let items = read_segment () in
    let len = Array.length items in
    if len > 0 then begin
      if Fault.fire fault_segment then raise (Segment_fault !seg_id);
      let sp = Telemetry.start_span "stream.segment" in
      let slots = Array.map (fun (d, e) -> Ooo.Stream.step sim d e) items in
      (* ---- fragment build ---- *)
      let bp = !pin_count in
      let base_g = !count - bp in
      let b = Graph.Builder.create () in
      for _ = 1 to bp do
        Graph.Builder.note_instr b
      done;
      (* per-node external floors (producers older than the pinned prefix) *)
      let ext : (int, int array) Hashtbl.t = Hashtbl.create 16 in
      let add_floor node row =
        match Hashtbl.find_opt ext node with
        | Some r0 ->
          for s = 0 to nsets - 1 do
            if row.(s) > r0.(s) then r0.(s) <- row.(s)
          done
        | None -> Hashtbl.add ext node row
      in
      (* last producer of each kind inside this segment (local index) *)
      let lw = Array.make Isa.num_regs (-1) in
      let lstore : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let lline : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let pm = ref !prev_mispredict in
      for k = 0 to len - 1 do
        let d, e = items.(k) in
        let li = bp + k in
        let gi = !count + k in
        let info = Build.info_of_sim cfg d e slots.(k) in
        (* remap producers to fragment-local indices; producers older than
           the pinned prefix become per-lane floors *)
        let old_row = ref None in
        let note_old pr =
          match pr with
          | None -> ()
          | Some r ->
            let row =
              match !old_row with
              | Some row -> row
              | None ->
                let row = Array.make nsets 0 in
                old_row := Some row;
                row
            in
            for s = 0 to nsets - 1 do
              if r.(s) > row.(s) then row.(s) <- r.(s)
            done
        in
        let reg_producers =
          List.filter_map
            (fun (r, g) ->
              if g >= base_g then Some (g - base_g)
              else begin
                note_old reg_rows.(r);
                None
              end)
            d.Trace.reg_deps
        in
        let mem_producer =
          match d.Trace.mem_dep with
          | Some g when g >= base_g -> Some (g - base_g)
          | Some _ ->
            (match d.Trace.mem_addr with
             | Some a -> note_old (Hashtbl.find_opt store_rows a)
             | None -> ());
            None
          | None -> None
        in
        (match !old_row with
         | Some row ->
           if wake <> 0 then
             for s = 0 to nsets - 1 do
               row.(s) <- row.(s) + wake
             done;
           add_floor (Graph.node ~seq:li ~kind:Graph.R) row
         | None -> ());
        let share_src =
          match e.Icost_uarch.Events.share_src with
          | Some g when g >= base_g -> Some (g - base_g)
          | Some _ ->
            (match Hashtbl.find_opt line_rows e.Icost_uarch.Events.line with
             | Some lr ->
               (* the PP edge is removed in Dmiss-idealized lanes *)
               let row = Array.make nsets 0 in
               for s = 0 to nsets - 1 do
                 if not (Category.Set.mem Category.Dmiss s) then row.(s) <- lr.(s)
               done;
               add_floor (Graph.node ~seq:li ~kind:Graph.P) row
             | None -> ());
            None
          | None -> None
        in
        let info = { info with Build.reg_producers; mem_producer; share_src } in
        let taken_limit_src =
          if info.Build.taken_branch
             && Queue.length taken_hist >= p.Build.fetch_taken_limit
          then begin
            let jl = Queue.peek taken_hist - base_g in
            (* an out-of-prefix source is dominated by the regular FBW edge
               from D(i - fetch_bw): exact drop *)
            if jl >= 0 then Some jl else None
          end
          else None
        in
        Build.emit p b ~prev_mispredict:!pm ~taken_limit_src ~seq:li info;
        if info.Build.taken_branch then begin
          Queue.add gi taken_hist;
          if Queue.length taken_hist > p.Build.fetch_taken_limit then
            ignore (Queue.pop taken_hist)
        end;
        pm := e.Icost_uarch.Events.mispredict;
        (match Isa.dest d.Trace.instr with Some rd -> lw.(rd) <- li | None -> ());
        if Isa.is_store d.Trace.instr then (
          match d.Trace.mem_addr with
          | Some a -> Hashtbl.replace lstore a li
          | None -> ());
        if Isa.is_load d.Trace.instr && e.Icost_uarch.Events.dl1_miss then
          Hashtbl.replace lline e.Icost_uarch.Events.line li
      done;
      let g = Graph.Builder.finish b in
      let ext_floors =
        let arr = Array.of_seq (Hashtbl.to_seq ext) in
        Array.sort (fun (a, _) (b, _) -> compare a b) arr;
        arr
      in
      (* ---- carry extraction plan ---- *)
      let total = bp + len in
      let new_pin = min bmax total in
      let first_keep = total - new_pin in
      let extracts = ref [] in
      for v = 0 to (5 * new_pin) - 1 do
        extracts := ((5 * first_keep) + v, !pin_next, v * nsets) :: !extracts
      done;
      let reg_updates = ref [] in
      for r = 0 to Isa.num_regs - 1 do
        if lw.(r) >= 0 then begin
          let row = Array.make nsets 0 in
          reg_updates := (r, row) :: !reg_updates;
          extracts := (Graph.node ~seq:lw.(r) ~kind:Graph.P, row, 0) :: !extracts
        end
      done;
      let store_updates = ref [] in
      Hashtbl.iter
        (fun a li ->
          let row = Array.make nsets 0 in
          store_updates := (a, row) :: !store_updates;
          extracts := (Graph.node ~seq:li ~kind:Graph.P, row, 0) :: !extracts)
        lstore;
      let line_updates = ref [] in
      Hashtbl.iter
        (fun line li ->
          let row = Array.make nsets 0 in
          line_updates := (line, row) :: !line_updates;
          extracts := (Graph.node ~seq:li ~kind:Graph.P, row, 0) :: !extracts)
        lline;
      let extracts = !extracts in
      (* ---- price all subsets, 32 lanes per pass; each chunk writes a
         disjoint lane range of every carry row, so extraction is
         race-free ---- *)
      let n_pinned = 5 * bp in
      let nchunks = nsets / lanes in
      Pool.parallel_chunks nchunks (fun ~lo ~hi ->
          let sc = take_scratch () in
          Fun.protect
            ~finally:(fun () -> give_scratch sc)
            (fun () ->
              for ch = lo to hi - 1 do
                let slo = ch * lanes in
                Graph.eval_lanes_pinned g sets ~lo:slo ~nl:lanes ~n_pinned
                  ~pinned:!pin ~pin_stride:nsets ~ext_floors ~latbuf:sc.latbuf
                  ~lset:sc.lset ~ktab:sc.ktab ~slab:sc.slab;
                List.iter
                  (fun (node, dst, off) ->
                    let soff = node * lanes in
                    for l = 0 to lanes - 1 do
                      dst.(off + slo + l) <- sc.slab.(soff + l)
                    done)
                  extracts
              done))
      ;
      (* ---- commit carries ---- *)
      let t = !pin in
      pin := !pin_next;
      pin_next := t;
      pin_count := new_pin;
      List.iter (fun (r, row) -> reg_rows.(r) <- Some row) !reg_updates;
      List.iter (fun (a, row) -> Hashtbl.replace store_rows a row) !store_updates;
      List.iter (fun (line, row) -> Hashtbl.replace line_rows line row) !line_updates;
      prev_mispredict := !pm;
      count := !count + len;
      (* ---- prune dead carries: D is monotone per lane (base-0 DD chain,
         never removed) and every floor attaches at an R or P node, both
         >= D + 1 in every lane; a carried row wholly below the newest
         dispatch row can therefore never raise any future max, so
         dropping it is exact.  This bounds the carry maps by the LIVE
         data footprint (addresses touched within roughly a window), not
         the cumulative one. ---- *)
      let lastd = (Graph.node ~seq:(new_pin - 1) ~kind:Graph.D * nsets) in
      let frontier = !pin in
      let dead_all addend row =
        let rec go s =
          s >= nsets || (row.(s) + addend <= frontier.(lastd + s) && go (s + 1))
        in
        go 0
      in
      (* line rows are only consulted in non-Dmiss lanes (the PP edge is
         removed under Dmiss idealization) *)
      let dead_nondmiss row =
        let rec go s =
          s >= nsets
          || ((Category.Set.mem Category.Dmiss s
               || row.(s) <= frontier.(lastd + s))
              && go (s + 1))
        in
        go 0
      in
      for r = 0 to Isa.num_regs - 1 do
        match reg_rows.(r) with
        | Some row when dead_all wake row -> reg_rows.(r) <- None
        | _ -> ()
      done;
      let drop tbl dead =
        let dead_keys =
          Hashtbl.fold (fun k row acc -> if dead row then k :: acc else acc) tbl []
        in
        List.iter (Hashtbl.remove tbl) dead_keys
      in
      drop store_rows (dead_all wake);
      drop line_rows dead_nondmiss;
      let cum_cycles = Ooo.Stream.cycles sim in
      let heap_words = (Gc.quick_stat ()).Gc.heap_words in
      if heap_words > !peak_heap then peak_heap := heap_words;
      Atomic.incr g_segments;
      bump_max g_peak_words heap_words;
      seg_stats :=
        {
          seg_id = !seg_id;
          seg_start = !count - len;
          seg_len = len;
          cum_cycles;
          heap_words;
        }
        :: !seg_stats;
      Telemetry.incr c_segments;
      Telemetry.add c_instrs len;
      Telemetry.end_span sp
        ~attrs:
          [
            ("seg", string_of_int !seg_id);
            ("instrs", string_of_int len);
            ("cum_cycles", string_of_int cum_cycles);
          ];
      incr seg_id;
      if len = segment_insns then loop ()
    end
  in
  loop ();
  let times = Array.make nsets 0 in
  if !count > 0 then begin
    let last_c = Graph.node ~seq:(!pin_count - 1) ~kind:Graph.C in
    let base = last_c * nsets in
    for s = 0 to nsets - 1 do
      times.(s) <- !pin.(base + s) + 1
    done
  end;
  {
    times;
    instrs = !count;
    segments = !seg_id;
    segment_insns;
    cycles = times.(Category.Set.empty);
    sim_cycles = Ooo.Stream.cycles sim;
    peak_heap_words = !peak_heap;
    seg_stats = List.rev !seg_stats;
  }

(** Table-backed cost oracle: the streamed aggregate answers every subset
    query from its precomputed absolute-time table, so all downstream
    breakdown/icost machinery runs unchanged over arbitrarily long
    traces. *)
let oracle (r : result) : Cost.oracle =
  Cost.with_batch
    ~batch:(fun ss -> Array.map (fun s -> float_of_int r.times.(s)) ss)
    (fun s -> float_of_int r.times.(s))

let peak_mb (r : result) : float =
  float_of_int (r.peak_heap_words * (Sys.word_size / 8)) /. (1024. *. 1024.)
