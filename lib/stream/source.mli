(** Streaming item sources: a pull interface over the committed dynamic
    stream, pairing each instruction with its event annotation. *)

module Trace = Icost_isa.Trace
module Program = Icost_isa.Program
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events

type t = unit -> (Trace.dyn * Events.evt) option
(** Yields the measured window in order, renumbered from 0; [None] at end
    of stream. *)

val of_arrays : Trace.dyn array -> Events.evt array -> t
(** Source over an already-sliced trace window and its annotations (the
    conformance-law path: feed exactly what the monolithic engines saw). *)

val of_program :
  ?prefetch:Events.prefetch ->
  Config.t ->
  Program.t ->
  warmup:int ->
  max_insns:int ->
  t
(** Interpret and annotate [p] one instruction at a time: the first
    [warmup] instructions warm caches/TLBs/predictor and are discarded,
    then up to [max_insns] measured instructions are yielded with
    [Trace.slice]/[Events.slice] renumbering semantics.  Peak memory is
    O(architectural state), independent of the instruction count. *)
