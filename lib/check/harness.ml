(* The conformance harness.  See harness.mli. *)

module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Prng = Icost_util.Prng
module Pool = Icost_util.Pool
module Fault = Icost_util.Fault
module Telemetry = Icost_util.Telemetry
module Texport = Icost_report.Telemetry_export
module Workload = Icost_workloads.Workload

let c_cases = Telemetry.counter "check.cases"
let c_laws = Telemetry.counter "check.laws"
let c_outcomes = Telemetry.counter "check.outcomes"
let c_violations = Telemetry.counter "check.violations"
let c_shrink = Telemetry.counter "check.shrink_attempts"
let c_artifacts = Telemetry.counter "check.artifacts"

(* Deliberate-violation hook: a constant error injected into every
   non-empty fullgraph evaluation, below the memoization layer, firing on
   every hit — order-independent, hence bit-identical on replay. *)
let fp_perturb = Fault.point "check.perturb_graph"
let perturbation = 1000.

let perturb s t =
  if (not (Category.Set.is_empty s)) && Fault.fire fp_perturb then
    t +. perturbation
  else t

(* Both the point and the batch path must be perturbed: the power-set
   consumers route through the batch when one exists, and the armed
   self-test relies on the violation firing either way. *)
let fg_wrap (oracle : Cost.oracle) : Cost.oracle =
  {
    Cost.point = (fun s -> perturb s (oracle.Cost.point s));
    batch =
      Option.map
        (fun b sets -> Array.mapi (fun i t -> perturb sets.(i) t) (b sets))
        oracle.Cost.batch;
  }

type opts = {
  master_seed : int;
  budget_s : float;
  benches : string list;
  gen_per_profile : int;
  warmup : int;
  measure : int;
  only : string list option;
  artifact_dir : string option;
}

let default_opts =
  {
    master_seed = 42;
    budget_s = 60.;
    benches = [];
    gen_per_profile = 2;
    warmup = 20_000;
    measure = 4_000;
    only = None;
    artifact_dir = None;
  }

let cases_of_opts o =
  let benches = match o.benches with [] -> Workload.names | bs -> bs in
  let bench_case b =
    {
      Case.target = Case.Bench b;
      variant = "base";
      warmup = o.warmup;
      measure = o.measure;
      sample_seed = o.master_seed;
    }
  in
  let prng = Prng.create o.master_seed in
  let gen_cases =
    List.concat_map
      (fun p ->
        List.init o.gen_per_profile (fun i ->
            let gen_seed = Prng.int prng 1_000_000 in
            {
              Case.target = Case.Generated (p, gen_seed);
              (* cycle the machine variants so every configuration sees
                 generated traffic (and the shrinker's variant move has
                 something to do) *)
              variant = List.nth Case.variants (i mod List.length Case.variants);
              warmup = o.warmup;
              measure = o.measure;
              sample_seed = o.master_seed;
            }))
      Gen.all_profiles
  in
  List.map bench_case benches @ gen_cases

type case_outcome = {
  case : Case.t;
  results : (Laws.law * Laws.outcome list) list;
  crashed : string option;
  deadline_skipped : bool;
}

type artifact = { file : string option; repro : Repro.t; shrink_attempts : int }

type summary = {
  outcomes : case_outcome list;
  passed : int;
  skipped : int;
  failed : int;
  crashed : int;
  deadline_skipped : int;
  artifacts : artifact list;
  elapsed_s : float;
}

let ok s = s.failed = 0 && s.crashed = 0

let eval_case ?only (case : Case.t) =
  let prepared = Case.prepare case in
  let ctx =
    Laws.make_ctx ~fg_wrap ~prof_opts:(Case.prof_opts case) (Case.config case)
      prepared
  in
  Laws.run_all ?only ctx

let is_fail (o : Laws.outcome) =
  match o.Laws.status with Laws.Fail _ -> true | _ -> false

(* --- shrinking one violation --- *)

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Re-evaluate just the violated law and report whether the same engine
   still fails; remembers the failing outcome of the last success so the
   minimized case's violation needn't be recomputed. *)
let still_fails ~law ~engine ~deadline last (c : Case.t) =
  if Unix.gettimeofday () > deadline then false
  else
    match eval_case ~only:[ law.Laws.id ] c with
    | exception _ -> false
    | results -> (
      let failing =
        List.concat_map
          (fun (_, os) ->
            List.filter (fun o -> o.Laws.engine = engine && is_fail o) os)
          results
      in
      match failing with
      | [] -> false
      | o :: _ ->
        last := Some (c, o);
        true)

let shrink_violation ~opts ~deadline (case : Case.t) (law : Laws.law)
    (outcome : Laws.outcome) =
  Telemetry.with_span "check.shrink" (fun () ->
      let last = ref (Some (case, outcome)) in
      let min_case, attempts =
        Shrink.minimize
          ~still_fails:
            (still_fails ~law ~engine:outcome.Laws.engine ~deadline last)
          case
      in
      Telemetry.add c_shrink attempts;
      let min_outcome =
        match !last with
        | Some (c, o) when c = min_case -> o
        | _ -> outcome (* shrinking never improved on the original *)
      in
      let viol =
        match min_outcome.Laws.status with
        | Laws.Fail v -> v
        | _ -> assert false
      in
      let repro =
        {
          Repro.law = law.Laws.id;
          engine = min_outcome.Laws.engine;
          detail = min_outcome.Laws.detail;
          case = min_case;
          observed = viol.Laws.lhs;
          expected = viol.Laws.rhs;
          msg = viol.Laws.msg;
          faults = Option.value (Fault.active_spec ()) ~default:"none";
        }
      in
      let file =
        match opts.artifact_dir with
        | None -> None
        | Some dir ->
          mkdir_p dir;
          let f =
            Filename.concat dir
              (Printf.sprintf "repro-%s-%s.json" law.Laws.id
                 (Case.name min_case))
          in
          let manifest =
            Texport.manifest
              ~config_digest:(Texport.digest (Case.config min_case))
              ~seed:min_case.Case.sample_seed
              ~workloads:[ Case.name min_case ]
              ()
          in
          Repro.write ~file:f ~manifest repro;
          Telemetry.incr c_artifacts;
          Some f
      in
      { file; repro; shrink_attempts = attempts })

(* --- the run --- *)

let run opts =
  Telemetry.with_span "check.run" (fun () ->
      let t0 = Unix.gettimeofday () in
      let deadline = t0 +. opts.budget_s in
      let cases = Array.of_list (cases_of_opts opts) in
      let outcomes =
        Pool.parallel_map
          (fun case ->
            if Unix.gettimeofday () > deadline then
              { case; results = []; crashed = None; deadline_skipped = true }
            else begin
              Telemetry.incr c_cases;
              let sp = Telemetry.start_span "check.case" in
              let r =
                match eval_case ?only:opts.only case with
                | results ->
                  { case; results; crashed = None; deadline_skipped = false }
                | exception e ->
                  {
                    case;
                    results = [];
                    crashed = Some (Printexc.to_string e);
                    deadline_skipped = false;
                  }
              in
              if Telemetry.enabled () then
                Telemetry.end_span sp ~attrs:[ ("case", Case.name case) ]
              else Telemetry.end_span sp;
              r
            end)
          cases
      in
      let outcomes = Array.to_list outcomes in
      let passed = ref 0 and skipped = ref 0 and failed = ref 0 in
      List.iter
        (fun co ->
          List.iter
            (fun (_, os) ->
              Telemetry.incr c_laws;
              List.iter
                (fun (o : Laws.outcome) ->
                  Telemetry.incr c_outcomes;
                  match o.Laws.status with
                  | Laws.Pass -> incr passed
                  | Laws.Skip _ -> incr skipped
                  | Laws.Fail _ ->
                    Telemetry.incr c_violations;
                    incr failed)
                os)
            co.results)
        outcomes;
      (* shrink the first violation of each failing case, sequentially:
         the shrinker re-simulates whole cases, so its inner fan-outs
         already saturate the pool *)
      let artifacts =
        List.filter_map
          (fun co ->
            match Laws.violations co.results with
            | [] -> None
            | (law, outcome) :: _ ->
              Some (shrink_violation ~opts ~deadline co.case law outcome))
          outcomes
      in
      {
        outcomes;
        passed = !passed;
        skipped = !skipped;
        failed = !failed;
        crashed =
          List.length
            (List.filter (fun (c : case_outcome) -> c.crashed <> None) outcomes);
        deadline_skipped =
          List.length
            (List.filter
               (fun (c : case_outcome) -> c.deadline_skipped)
               outcomes);
        artifacts;
        elapsed_s = Unix.gettimeofday () -. t0;
      })

(* --- reporting --- *)

let render (s : summary) =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let evaluated =
    List.filter
      (fun (c : case_outcome) -> (not c.deadline_skipped) && c.crashed = None)
      s.outcomes
  in
  pr "conformance: %d cases (%d evaluated), %.1fs\n" (List.length s.outcomes)
    (List.length evaluated) s.elapsed_s;
  (* per-law aggregate, in table order *)
  let tally = Hashtbl.create 32 in
  List.iter
    (fun co ->
      List.iter
        (fun ((law : Laws.law), os) ->
          let p, sk, f =
            try Hashtbl.find tally law.Laws.id with Not_found -> (0, 0, 0)
          in
          let p = ref p and sk = ref sk and f = ref f in
          List.iter
            (fun (o : Laws.outcome) ->
              match o.Laws.status with
              | Laws.Pass -> incr p
              | Laws.Skip _ -> incr sk
              | Laws.Fail _ -> incr f)
            os;
          Hashtbl.replace tally law.Laws.id (!p, !sk, !f))
        co.results)
    s.outcomes;
  pr "  %-24s %-13s %-20s %5s %5s %5s\n" "law" "family" "tolerance" "pass"
    "skip" "fail";
  List.iter
    (fun (law : Laws.law) ->
      match Hashtbl.find_opt tally law.Laws.id with
      | None -> ()
      | Some (p, sk, f) ->
        pr "  %-24s %-13s %-20s %5d %5d %5d\n" law.Laws.id
          (Laws.family_name law.Laws.family)
          (Laws.tolerance_to_string law.Laws.tol)
          p sk f)
    Laws.all;
  List.iter
    (fun (co : case_outcome) ->
      match co.crashed with
      | Some msg -> pr "  CRASH %s: %s\n" (Case.describe co.case) msg
      | None -> ())
    s.outcomes;
  if s.deadline_skipped > 0 then
    pr "  %d case(s) skipped: wall-clock budget exhausted\n" s.deadline_skipped;
  List.iter
    (fun a ->
      let r = a.repro in
      pr "violation: %s/%s (%s) on %s\n" r.Repro.law r.Repro.engine
        r.Repro.detail
        (Case.describe r.Repro.case);
      pr "  %s\n" r.Repro.msg;
      pr "  shrunk in %d attempts to %d measured instructions%s\n"
        a.shrink_attempts r.Repro.case.Case.measure
        (match a.file with
        | Some f -> Printf.sprintf "; replay: icost check --replay %s" f
        | None -> "");
      ())
    s.artifacts;
  pr "%s\n"
    (if ok s then
       Printf.sprintf "all laws hold (%d outcomes, %d skipped)" s.passed
         s.skipped
     else
       Printf.sprintf "%d violation(s), %d crash(es)" s.failed s.crashed);
  Buffer.contents buf

(* --- replay --- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let replay file =
  let* r = Repro.read file in
  let* law =
    match Laws.find r.Repro.law with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "replay: unknown law %S" r.Repro.law)
  in
  (* the artifact's fault spec replaces whatever is armed, but only for
     the duration of the replay — callers (tests, a resident service)
     must get their own fault state back *)
  let previous = Fault.active_spec () in
  let restore () =
    match previous with
    | None -> Fault.disable ()
    | Some spec -> (
      match Fault.configure spec with Ok () | Error _ -> ())
  in
  let* () =
    match r.Repro.faults with
    | "none" ->
      Fault.disable ();
      Ok ()
    | spec -> (
      match Fault.configure spec with
      | Ok () -> Ok ()
      | Error m -> Error (Printf.sprintf "replay: bad fault spec: %s" m))
  in
  let* results =
    match
      Fun.protect ~finally:restore (fun () ->
          eval_case ~only:[ law.Laws.id ] r.Repro.case)
    with
    | results -> Ok results
    | exception e ->
      Error (Printf.sprintf "replay: evaluation raised %s" (Printexc.to_string e))
  in
  let outcome =
    List.concat_map
      (fun (_, os) ->
        List.filter
          (fun (o : Laws.outcome) ->
            o.Laws.engine = r.Repro.engine && o.Laws.detail = r.Repro.detail)
          os)
      results
  in
  match outcome with
  | [] ->
    Error
      (Printf.sprintf "replay: no %s outcome for engine %s, detail %s"
         law.Laws.id r.Repro.engine r.Repro.detail)
  | o :: _ -> (
    match o.Laws.status with
    | Laws.Fail v when Int64.equal (Int64.bits_of_float v.Laws.lhs)
                         (Int64.bits_of_float r.Repro.observed) ->
      Ok
        (Printf.sprintf
           "reproduced bit-identically: %s/%s (%s) observed %.17g, expected %.17g"
           law.Laws.id r.Repro.engine r.Repro.detail v.Laws.lhs v.Laws.rhs)
    | Laws.Fail v ->
      Error
        (Printf.sprintf
           "violation reproduced but drifted: observed %.17g, artifact says %.17g"
           v.Laws.lhs r.Repro.observed)
    | Laws.Pass -> Error "law passes now: violation did not reproduce"
    | Laws.Skip m -> Error (Printf.sprintf "law skipped on replay: %s" m))
