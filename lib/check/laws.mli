(** The conformance laws, as data.

    Each {!law} states one property the three cost engines must satisfy —
    an algebraic identity of the icost definition (Section 2 of the
    paper), a metamorphic relation under a configuration change, or a
    differential bound tying two engines together on the same prepared
    workload.  Laws carry their own tolerance, so the complete policy
    (which engine pairs must agree exactly, which within a bound, and how
    large the bound is) lives in one table ({!all}) instead of being
    scattered across test files.

    Laws are pure: evaluating one never mutates the context, so the
    harness is free to run them in any order, in parallel, or re-run a
    single law while shrinking a counterexample. *)

module Config = Icost_uarch.Config
module Ooo = Icost_sim.Ooo
module Graph = Icost_depgraph.Graph
module Sampler = Icost_profiler.Sampler
module Profile = Icost_profiler.Profile
module Cost = Icost_core.Cost
module Runner = Icost_experiments.Runner

(** Everything the laws may consult about one prepared case.  Oracles are
    memoized, so laws share subset evaluations; [fg] is the fullgraph
    oracle {e as wrapped by the harness}, which is where a deliberate
    fault-injected perturbation is applied. *)
type ctx = {
  cfg : Config.t;
  prepared : Runner.prepared;
  baseline : Ooo.result;
  graph : Graph.t;
  sim : Cost.oracle;  (** multisim *)
  fg : Cost.oracle;  (** fullgraph (possibly perturbed under faults) *)
  pr : Cost.oracle;  (** profiler *)
  profile : Profile.t;
  prof_opts : Sampler.opts;  (** sampling options used to build [profile] *)
}

val make_ctx :
  ?fg_wrap:(Cost.oracle -> Cost.oracle) ->
  ?prof_opts:Sampler.opts ->
  Config.t ->
  Runner.prepared ->
  ctx
(** Build a context: one baseline simulation, one graph, one profile, the
    three memoized oracles.  [fg_wrap] interposes on the raw fullgraph
    oracle {e before} memoization (the harness uses it to install the
    deliberate-violation fault point). *)

(** {1 Tolerances} *)

type tolerance =
  | Exact  (** bit-identical floats (and both NaN counts as equal) *)
  | Abs of float  (** absolute slack in cycles *)
  | Rel of float * float
      (** [(r, floor)]: slack is [max floor (r *. scale)] where [scale]
          is the case's baseline cycle count *)

val tolerance_to_string : tolerance -> string

(** {1 Outcomes} *)

type violation = { lhs : float; rhs : float; msg : string }

type status = Pass | Skip of string | Fail of violation

type outcome = {
  engine : string;  (** "multisim" / "fullgraph" / "profiler" / "config" *)
  detail : string;  (** which instance: category, subset, relaxation... *)
  status : status;
}

(** {1 The law table} *)

type family = Algebraic | Metamorphic | Differential | Determinism | Streaming

val family_name : family -> string

type law = {
  id : string;
  family : family;
  tol : tolerance;
  doc : string;  (** one line for the table in DESIGN.md and [--list] *)
  run : ctx -> outcome list;
}

val all : law list
(** Every law, in documentation order. *)

val find : string -> law option
val names : string list

val violations : (law * outcome list) list -> (law * outcome) list
(** Flatten to the failing outcomes only. *)

val run_all : ?only:string list -> ctx -> (law * outcome list) list
(** Evaluate the table (or the [only] subset, by id) on one context,
    sequentially.  Parallelism across {e cases} is the harness's job;
    within a case the memoized oracles make law order irrelevant. *)
