(** Replayable counterexample artifacts ([icost.check.repro.v1]).

    A violation is stored with the shrunken {!Case.t}, the violated law's
    identity, the observed and expected values {e as IEEE-754 bit
    patterns} (hex), the fault spec that was active (so deliberate
    perturbations re-arm on replay), and the full run manifest.  Replay
    ([icost check --replay f]) rebuilds the case from scratch and demands
    the same observed value bit-for-bit. *)

module Texport = Icost_report.Telemetry_export

type t = {
  law : string;
  engine : string;
  detail : string;
  case : Case.t;
  observed : float;
  expected : float;
  msg : string;
  faults : string;  (** normalized {!Icost_util.Fault} spec, or ["none"] *)
}

val schema : string
(** ["icost.check.repro.v1"]. *)

val to_json : manifest:Texport.manifest -> t -> string
(** One-line JSON document embedding the manifest verbatim. *)

val of_string : string -> (t, string) result
(** Parse an artifact; the embedded manifest is not interpreted.
    [observed]/[expected] are reconstructed from the stored bit patterns,
    so replay comparisons are exact even for non-representable decimal
    renderings. *)

val write : file:string -> manifest:Texport.manifest -> t -> unit
val read : string -> (t, string) result
