(** Seeded random-workload generation for conformance checking.

    Promoted from the test suite's ad-hoc fuzz generator: builds
    structurally valid, non-stuck programs exercising the whole ISA —
    straight-line arithmetic, guarded memory accesses (always inside a
    dedicated data region), counted loops, data-dependent branches and
    calls to generated leaf subroutines.  Programs run forever (outer
    loop); traces are cut by the interpreter's instruction budget.

    A {!profile} skews the instruction mix so the conformance harness can
    stress each engine's weak spots separately: loop recurrences for the
    window/wakeup model, a tiny data region for aliasing and
    store-forwarding, a branch-dense mix for the misprediction model.
    All randomness flows through {!Icost_util.Prng}: the same
    (profile, seed) pair always yields the same program. *)

type profile =
  | Mixed  (** the historical fuzz mix: a bit of everything *)
  | Loop_heavy  (** nested counted loops with carried recurrences *)
  | Alias_heavy
      (** loads/stores dominate, squeezed into a 64-word region so
          same-line sharing and store-to-load forwarding are common *)
  | Branch_heavy  (** data-dependent branches at every turn *)

val all_profiles : profile list

val profile_name : profile -> string
(** ["mixed"], ["loop"], ["alias"], ["branch"]. *)

val profile_of_name : string -> profile option

val generate : ?profile:profile -> int -> Icost_isa.Program.t
(** [generate ~profile seed] builds a program; deterministic in
    (profile, seed).  Default profile is {!Mixed} (bit-compatible with
    the pre-library test generator for any seed). *)
