(* Conformance-check cases.  See case.mli. *)

module Config = Icost_uarch.Config
module Sampler = Icost_profiler.Sampler
module Workload = Icost_workloads.Workload
module Runner = Icost_experiments.Runner
module Json = Icost_service.Json

type target = Bench of string | Generated of Gen.profile * int

type t = {
  target : target;
  variant : string;
  warmup : int;
  measure : int;
  sample_seed : int;
}

let variants = [ "base"; "dl1"; "wakeup"; "bmisp" ]

let config_of_variant = function
  | "base" -> Some Config.default
  | "dl1" -> Some Config.loop_dl1
  | "wakeup" -> Some Config.loop_wakeup
  | "bmisp" -> Some Config.loop_bmisp
  | _ -> None

let target_name = function
  | Bench b -> b
  | Generated (p, seed) ->
    Printf.sprintf "gen-%s-%d" (Gen.profile_name p) seed

let name c = Printf.sprintf "%s-%s-n%d" (target_name c.target) c.variant c.measure

let describe c =
  Printf.sprintf "%s variant=%s warmup=%d measure=%d sample_seed=%d"
    (target_name c.target) c.variant c.warmup c.measure c.sample_seed

let workload c =
  match c.target with
  | Bench b -> Workload.find_exn b
  | Generated (p, seed) ->
    {
      Workload.name = target_name c.target;
      description =
        Printf.sprintf "generated %s-profile program, seed %d"
          (Gen.profile_name p) seed;
      build = (fun () -> Gen.generate ~profile:p seed);
    }

let config c =
  match config_of_variant c.variant with
  | Some cfg -> cfg
  | None -> invalid_arg (Printf.sprintf "Case.config: unknown variant %S" c.variant)

(* Sampling rates scaled to the window: the default (paper) rates assume
   tens of thousands of instructions and would leave a shrunken
   1000-instruction case with one fragment or none. *)
let prof_opts c =
  let n = c.measure in
  {
    Sampler.default_opts with
    sig_len = max 50 (min 400 (n / 10));
    sig_period = max 100 (n / 12);
    det_period = 7;
    seed = c.sample_seed;
  }

let prepare c =
  (* Structural parameters (caches, TLBs, predictor geometry) are shared
     by every variant, so preparation always uses the default machine —
     same invariant the experiment runner and the service rely on. *)
  Runner.prepare
    { Runner.warmup = c.warmup; measure = c.measure; benches = [] }
    (workload c)

(* --- JSON (for replay artifacts) --- *)

let target_to_json = function
  | Bench b -> Json.Obj [ ("kind", Json.Str "bench"); ("name", Json.Str b) ]
  | Generated (p, seed) ->
    Json.Obj
      [
        ("kind", Json.Str "gen");
        ("profile", Json.Str (Gen.profile_name p));
        ("seed", Json.Int seed);
      ]

let to_json c =
  Json.Obj
    [
      ("target", target_to_json c.target);
      ("variant", Json.Str c.variant);
      ("warmup", Json.Int c.warmup);
      ("measure", Json.Int c.measure);
      ("sample_seed", Json.Int c.sample_seed);
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "case: missing or ill-typed %s" what)

let target_of_json j =
  let* kind = req "target.kind" (Option.bind (Json.member "kind" j) Json.get_str) in
  match kind with
  | "bench" ->
    let* b = req "target.name" (Option.bind (Json.member "name" j) Json.get_str) in
    Ok (Bench b)
  | "gen" ->
    let* pname =
      req "target.profile" (Option.bind (Json.member "profile" j) Json.get_str)
    in
    let* seed = req "target.seed" (Option.bind (Json.member "seed" j) Json.get_int) in
    let* p = req "target.profile" (Gen.profile_of_name pname) in
    Ok (Generated (p, seed))
  | k -> Error (Printf.sprintf "case: unknown target kind %S" k)

let of_json j =
  let* tj = req "target" (Json.member "target" j) in
  let* target = target_of_json tj in
  let* variant = req "variant" (Option.bind (Json.member "variant" j) Json.get_str) in
  let* _cfg = req "variant" (config_of_variant variant) in
  let* warmup = req "warmup" (Option.bind (Json.member "warmup" j) Json.get_int) in
  let* measure = req "measure" (Option.bind (Json.member "measure" j) Json.get_int) in
  let* sample_seed =
    req "sample_seed" (Option.bind (Json.member "sample_seed" j) Json.get_int)
  in
  if measure <= 0 then Error "case: measure must be positive"
  else if warmup < 0 then Error "case: warmup must be non-negative"
  else Ok { target; variant; warmup; measure; sample_seed }
