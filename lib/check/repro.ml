(* Replayable counterexample artifacts.  See repro.mli. *)

module Json = Icost_service.Json
module Texport = Icost_report.Telemetry_export

type t = {
  law : string;
  engine : string;
  detail : string;
  case : Case.t;
  observed : float;
  expected : float;
  msg : string;
  faults : string;
}

let schema = "icost.check.repro.v1"
let bits_hex f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

let float_of_bits_hex s =
  match Scanf.sscanf_opt s "%Lx%!" (fun b -> b) with
  | Some b -> Some (Int64.float_of_bits b)
  | None -> None

(* the bit patterns above are authoritative; these mirrors are for human
   readers, so non-finite values degrade to strings rather than breaking
   the encoder's finite-only invariant *)
let human f = if Float.is_finite f then Json.Float f else Json.Str (string_of_float f)

let to_json ~manifest r =
  Json.encode
    (Json.Obj
       [
         ("schema", Json.Str schema);
         ("law", Json.Str r.law);
         ("engine", Json.Str r.engine);
         ("detail", Json.Str r.detail);
         ("case", Case.to_json r.case);
         ("observed_bits", Json.Str (bits_hex r.observed));
         ("expected_bits", Json.Str (bits_hex r.expected));
         ("observed", human r.observed);
         ("expected", human r.expected);
         ("msg", Json.Str r.msg);
         ("faults", Json.Str r.faults);
         ("manifest", Json.parse (Texport.manifest_json manifest));
       ])

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "repro: missing or ill-typed %s" what)

let str_field j name = Option.bind (Json.member name j) Json.get_str

let of_string s =
  let* j =
    match Json.parse s with
    | j -> Ok j
    | exception Json.Parse_error m -> Error ("repro: " ^ m)
  in
  let* sc = req "schema" (str_field j "schema") in
  let* () =
    if sc = schema then Ok ()
    else Error (Printf.sprintf "repro: unsupported schema %S" sc)
  in
  let* law = req "law" (str_field j "law") in
  let* engine = req "engine" (str_field j "engine") in
  let* detail = req "detail" (str_field j "detail") in
  let* cj = req "case" (Json.member "case" j) in
  let* case = Case.of_json cj in
  let* ob = req "observed_bits" (str_field j "observed_bits") in
  let* eb = req "expected_bits" (str_field j "expected_bits") in
  let* observed = req "observed_bits" (float_of_bits_hex ob) in
  let* expected = req "expected_bits" (float_of_bits_hex eb) in
  let* msg = req "msg" (str_field j "msg") in
  let* faults = req "faults" (str_field j "faults") in
  Ok { law; engine; detail; case; observed; expected; msg; faults }

let write ~file ~manifest r =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ~manifest r);
      output_char oc '\n')

let read file =
  match In_channel.with_open_text file In_channel.input_all with
  | s -> of_string s
  | exception Sys_error m -> Error ("repro: " ^ m)
