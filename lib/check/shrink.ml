(* Greedy counterexample minimization.  See shrink.mli. *)

let min_measure = 100

(* Well-founded size: every candidate move strictly decreases it. *)
let size (c : Case.t) =
  let seed_weight =
    match c.target with Case.Bench _ -> 0 | Case.Generated (_, s) -> s
  in
  c.measure + c.warmup + (if c.variant = "base" then 0 else 1) + seed_weight

(* Candidate moves, most aggressive first.  Each must return a strictly
   smaller case (by [size]) so the outer loop terminates. *)
let candidates (c : Case.t) =
  let measure_moves =
    if c.measure / 2 >= min_measure then
      [ { c with Case.measure = c.measure / 2 } ]
    else []
  in
  let measure_trim =
    let m = c.measure * 3 / 4 in
    if m >= min_measure && m < c.measure then [ { c with Case.measure = m } ]
    else []
  in
  let warmup_moves =
    if c.warmup > 0 then
      { c with Case.warmup = 0 }
      :: (if c.warmup >= 2 then [ { c with Case.warmup = c.warmup / 2 } ] else [])
    else []
  in
  let variant_moves =
    if c.variant <> "base" then [ { c with Case.variant = "base" } ] else []
  in
  let seed_moves =
    match c.target with
    | Case.Bench _ -> []
    | Case.Generated (p, s) when s > 0 ->
      [ { c with Case.target = Case.Generated (p, s / 2) } ]
    | Case.Generated _ -> []
  in
  measure_moves @ warmup_moves @ variant_moves @ seed_moves @ measure_trim

let minimize ?(max_attempts = 60) ~still_fails case =
  let attempts = ref 0 in
  let try_case c =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      still_fails c
    end
  in
  let rec go c =
    match List.find_opt try_case (candidates c) with
    | Some smaller when size smaller < size c -> go smaller
    | _ -> c
  in
  let result = go case in
  (result, !attempts)
