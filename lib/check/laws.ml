(* The conformance law table.  See laws.mli. *)

module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Isa = Icost_isa.Isa
module Trace = Icost_isa.Trace
module Ooo = Icost_sim.Ooo
module Multisim = Icost_sim.Multisim
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Sampler = Icost_profiler.Sampler
module Profile = Icost_profiler.Profile
module Runner = Icost_experiments.Runner
module Sparam = Icost_sensitivity.Param
module Sweep = Icost_sensitivity.Sweep
module Stream_core = Icost_stream.Core
module Stream_source = Icost_stream.Source
module Set = Category.Set

type ctx = {
  cfg : Config.t;
  prepared : Runner.prepared;
  baseline : Ooo.result;
  graph : Graph.t;
  sim : Cost.oracle;
  fg : Cost.oracle;
  pr : Cost.oracle;
  profile : Profile.t;
  prof_opts : Sampler.opts;
}

let make_ctx ?(fg_wrap = fun o -> o) ?prof_opts cfg (prepared : Runner.prepared)
    =
  let baseline = Runner.baseline_run cfg prepared in
  let graph = Runner.graph_of ~baseline cfg prepared in
  let prof_opts =
    match prof_opts with Some o -> o | None -> Sampler.default_opts
  in
  let profile =
    Profile.profile ~opts:prof_opts cfg prepared.program prepared.trace
      prepared.evts baseline
  in
  {
    cfg;
    prepared;
    baseline;
    graph;
    sim = Cost.memoize (Multisim.oracle cfg prepared.trace prepared.evts);
    fg = Cost.memoize (fg_wrap (Build.oracle graph));
    pr = Cost.memoize (Profile.oracle profile);
    profile;
    prof_opts;
  }

(* --- tolerances --- *)

type tolerance = Exact | Abs of float | Rel of float * float

let tolerance_to_string = function
  | Exact -> "exact"
  | Abs a -> Printf.sprintf "abs %g" a
  | Rel (r, floor) -> Printf.sprintf "rel %g%% floor %g" (100. *. r) floor

let slack tol ~scale =
  match tol with
  | Exact -> 0.
  | Abs a -> a
  | Rel (r, floor) -> Float.max floor (r *. Float.abs scale)

(* --- outcomes --- *)

type violation = { lhs : float; rhs : float; msg : string }
type status = Pass | Skip of string | Fail of violation
type outcome = { engine : string; detail : string; status : status }

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let eq_outcome ~tol ~scale ~engine ~detail lhs rhs =
  let ok =
    match tol with
    | Exact -> feq lhs rhs
    | _ -> Float.abs (lhs -. rhs) <= slack tol ~scale
  in
  let status =
    if ok then Pass
    else
      Fail
        {
          lhs;
          rhs;
          msg =
            Printf.sprintf "%.17g <> %.17g (tol %s)" lhs rhs
              (tolerance_to_string tol);
        }
  in
  { engine; detail; status }

(* [lhs >= rhs] up to the tolerance's slack. *)
let ge_outcome ~tol ~scale ~engine ~detail lhs rhs =
  let status =
    if lhs >= rhs -. slack tol ~scale then Pass
    else
      Fail
        {
          lhs;
          rhs;
          msg =
            Printf.sprintf "%.17g < %.17g (tol %s)" lhs rhs
              (tolerance_to_string tol);
        }
  in
  { engine; detail; status }

let skip ~engine ~detail reason = { engine; detail; status = Skip reason }
let scale_of ctx = float_of_int ctx.baseline.Ooo.cycles

let engines ctx =
  [ ("multisim", ctx.sim); ("fullgraph", ctx.fg); ("profiler", ctx.pr) ]

(* The small set used where multisim would otherwise need 2^8 timing runs:
   three categories whose pairwise interactions the paper highlights
   (dl1/bmisp/dmiss appear throughout Sections 2 and 4). *)
let pow_set = Set.of_list [ Category.Dl1; Category.Bmisp; Category.Dmiss ]

(* --- event/resource census (for the degeneracy laws) --- *)

(* How many times each category's underlying event class occurs in the
   measured window; [None] for the structural categories (win, bw), which
   are never idle.  [Dl1] counts memory instructions rather than loads
   alone: if stores ever charge L1 hit latency, a store-only program must
   not be misread as dl1-idle. *)
let category_count (p : Runner.prepared) : Category.t -> int option =
  let mem = ref 0 and shalu = ref 0 and lgalu = ref 0 in
  Array.iter
    (fun (d : Trace.dyn) ->
      if Isa.is_mem d.instr then incr mem;
      if Isa.is_short_alu d.instr then incr shalu;
      if Isa.is_long_alu d.instr then incr lgalu)
    p.trace.instrs;
  let bmisp = ref 0 and dmiss = ref 0 and imiss = ref 0 in
  Array.iter
    (fun (e : Events.evt) ->
      if e.mispredict then incr bmisp;
      if e.dl1_miss || e.dl2_miss || e.dtlb_miss then incr dmiss;
      if e.il1_miss || e.il2_miss || e.itlb_miss then incr imiss)
    p.evts;
  fun c ->
    match c with
    | Category.Dl1 -> Some !mem
    | Category.Dmiss -> Some !dmiss
    | Category.Imiss -> Some !imiss
    | Category.Bmisp -> Some !bmisp
    | Category.Shalu -> Some !shalu
    | Category.Lgalu -> Some !lgalu
    | Category.Win | Category.Bw -> None

let idle_categories p =
  List.filter
    (fun c -> match category_count p c with Some 0 -> true | _ -> false)
    Category.all

let pool_name = function
  | Config.Int_alu_pool -> "int_alu"
  | Config.Int_mul_pool -> "int_mul"
  | Config.Fp_alu_pool -> "fp_alu"
  | Config.Fp_mul_pool -> "fp_mul"
  | Config.Mem_port_pool -> "mem_port"

let all_pools =
  [
    Config.Int_alu_pool;
    Config.Int_mul_pool;
    Config.Fp_alu_pool;
    Config.Fp_mul_pool;
    Config.Mem_port_pool;
  ]

let idle_pools (p : Runner.prepared) =
  let used = Hashtbl.create 8 in
  Array.iter
    (fun (d : Trace.dyn) ->
      Hashtbl.replace used (Config.fu_pool_of_class (Isa.class_of d.instr)) ())
    p.trace.instrs;
  List.filter (fun pool -> not (Hashtbl.mem used pool)) all_pools

let double_pool (cfg : Config.t) = function
  | Config.Int_alu_pool -> { cfg with num_int_alu = 2 * cfg.num_int_alu }
  | Config.Int_mul_pool -> { cfg with num_int_mul = 2 * cfg.num_int_mul }
  | Config.Fp_alu_pool -> { cfg with num_fp_alu = 2 * cfg.num_fp_alu }
  | Config.Fp_mul_pool -> { cfg with num_fp_mul = 2 * cfg.num_fp_mul }
  | Config.Mem_port_pool -> { cfg with num_mem_ports = 2 * cfg.num_mem_ports }

(* Strictly-easier machines for the relaxation law: each change can only
   remove a constraint or shorten a latency. *)
let relaxations (cfg : Config.t) =
  [
    ("window*2", { cfg with window_size = 2 * cfg.window_size });
    ( "fetch+commit_bw+2",
      { cfg with fetch_bw = cfg.fetch_bw + 2; commit_bw = cfg.commit_bw + 2 }
    );
    ("dl1_lat-1", { cfg with dl1_lat = max 1 (cfg.dl1_lat - 1) });
    ("mem_lat/2", { cfg with mem_lat = max 1 (cfg.mem_lat / 2) });
  ]

(* --- the table --- *)

type family = Algebraic | Metamorphic | Differential | Determinism | Streaming

let family_name = function
  | Algebraic -> "algebraic"
  | Metamorphic -> "metamorphic"
  | Differential -> "differential"
  | Determinism -> "determinism"
  | Streaming -> "streaming"

type law = {
  id : string;
  family : family;
  tol : tolerance;
  doc : string;
  run : ctx -> outcome list;
}

let mk id family tol doc (run : ctx -> outcome list) =
  { id; family; tol; doc; run }

let law_empty_zero =
  let tol = Exact in
  mk "empty-zero" Algebraic tol
    "cost({}) = 0 and icost({}) = 0 on every engine" (fun ctx ->
      List.concat_map
        (fun (engine, o) ->
          let scale = scale_of ctx in
          [
            eq_outcome ~tol ~scale ~engine ~detail:"cost"
              (Cost.cost o Set.empty) 0.;
            eq_outcome ~tol ~scale ~engine ~detail:"icost"
              (Cost.icost o Set.empty) 0.;
          ])
        (engines ctx))

let law_singleton_identity =
  let tol = Abs 1e-9 in
  mk "singleton-identity" Algebraic tol
    "icost({c}) = cost({c}) for every category, on every engine" (fun ctx ->
      List.concat_map
        (fun (engine, o) ->
          List.map
            (fun c ->
              let s = Set.singleton c in
              eq_outcome ~tol ~scale:(scale_of ctx) ~engine
                ~detail:(Category.name c) (Cost.icost o s) (Cost.cost o s))
            Category.all)
        (engines ctx))

let law_icost_defs_agree =
  let tol = Abs 1e-6 in
  mk "icost-defs-agree" Algebraic tol
    "recursive icost = inclusion-exclusion icost on dl1/bmisp/dmiss subsets"
    (fun ctx ->
      let subsets =
        List.filter (fun s -> Set.cardinal s >= 2) (Set.subsets pow_set)
      in
      List.concat_map
        (fun (engine, o) ->
          List.map
            (fun s ->
              eq_outcome ~tol ~scale:(scale_of ctx) ~engine
                ~detail:(Set.name s) (Cost.icost o s) (Cost.icost_ie o s))
            subsets)
        (engines ctx))

let law_powerset_complete =
  let tol = Abs 1e-6 in
  mk "powerset-complete" Algebraic tol
    "sum of icosts over the power set telescopes to cost of the set"
    (fun ctx ->
      let scale = scale_of ctx in
      let on (engine, o) s =
        eq_outcome ~tol ~scale ~engine ~detail:(Set.name s)
          (Cost.sum_icosts_powerset o s)
          (Cost.cost o s)
      in
      List.map (fun eo -> on eo pow_set) (engines ctx)
      @ [
          on ("fullgraph", ctx.fg) Set.full; on ("profiler", ctx.pr) Set.full;
        ])

let law_idle_class_zero =
  let tol = Abs 1e-9 in
  mk "idle-class-zero" Metamorphic tol
    "idealizing an event class that never fires costs exactly 0" (fun ctx ->
      match idle_categories ctx.prepared with
      | [] -> [ skip ~engine:"all" ~detail:"-" "no idle event class" ]
      | idle ->
        List.concat_map
          (fun (engine, o) ->
            List.map
              (fun c ->
                eq_outcome ~tol ~scale:(scale_of ctx) ~engine
                  ~detail:(Category.name c)
                  (Cost.cost o (Set.singleton c))
                  0.)
              idle)
          (engines ctx))

let law_cost_nonneg =
  let tol = Abs 1e-9 in
  mk "cost-nonneg" Metamorphic tol
    "graph re-evaluation can only shrink the critical path: cost >= 0"
    (fun ctx ->
      List.concat_map
        (fun (engine, o) ->
          List.map
            (fun c ->
              ge_outcome ~tol ~scale:(scale_of ctx) ~engine
                ~detail:(Category.name c)
                (Cost.cost o (Set.singleton c))
                0.)
            Category.all)
        [ ("fullgraph", ctx.fg); ("profiler", ctx.pr) ])

let law_cost_nonneg_sim =
  let tol = Rel (0.01, 2.0) in
  mk "cost-nonneg-sim" Metamorphic tol
    "multisim cost >= 0 up to scheduling noise" (fun ctx ->
      List.map
        (fun c ->
          ge_outcome ~tol ~scale:(scale_of ctx) ~engine:"multisim"
            ~detail:(Category.name c)
            (Cost.cost ctx.sim (Set.singleton c))
            0.)
        Category.all)

let monotone_pairs =
  (* (smaller, larger) set pairs; all draw on already-needed subsets *)
  List.map (fun c -> (Set.singleton c, Set.full)) Category.all
  @ [ (pow_set, Set.full) ]
  @ List.map (fun c -> (Set.singleton c, pow_set)) (Set.to_list pow_set)

let monotone_outcomes ~tol ctx (engine, o) =
  List.map
    (fun (s, t) ->
      ge_outcome ~tol ~scale:(scale_of ctx) ~engine
        ~detail:(Printf.sprintf "%s<=%s" (Set.name s) (Set.name t))
        (Cost.cost o t) (Cost.cost o s))
    monotone_pairs

let law_cost_monotone =
  let tol = Abs 1e-9 in
  mk "cost-monotone" Metamorphic tol
    "idealizing more can only help: S subset of T => cost(S) <= cost(T)"
    (fun ctx ->
      List.concat_map
        (monotone_outcomes ~tol ctx)
        [ ("fullgraph", ctx.fg); ("profiler", ctx.pr) ])

let law_cost_monotone_sim =
  let tol = Rel (0.02, 5.0) in
  mk "cost-monotone-sim" Metamorphic tol
    "multisim cost monotone under subset inclusion, up to scheduling noise"
    (fun ctx -> monotone_outcomes ~tol ctx ("multisim", ctx.sim))

let law_idle_resource_noop =
  let tol = Exact in
  mk "idle-resource-noop" Metamorphic tol
    "doubling a functional-unit pool no instruction uses changes nothing"
    (fun ctx ->
      match idle_pools ctx.prepared with
      | [] -> [ skip ~engine:"config" ~detail:"-" "every FU pool is used" ]
      | idle ->
        List.map
          (fun pool ->
            let cycles cfg =
              float_of_int (Runner.baseline_run cfg ctx.prepared).Ooo.cycles
            in
            eq_outcome ~tol ~scale:(scale_of ctx) ~engine:"config"
              ~detail:(pool_name pool)
              (cycles (double_pool ctx.cfg pool))
              (float_of_int ctx.baseline.Ooo.cycles))
          idle)

let law_relax_monotone =
  let tol = Rel (0.02, 5.0) in
  mk "relax-monotone" Metamorphic tol
    "a strictly easier machine is not slower (window, bandwidth, latencies)"
    (fun ctx ->
      let base = float_of_int ctx.baseline.Ooo.cycles in
      List.map
        (fun (detail, cfg') ->
          let relaxed =
            float_of_int (Runner.baseline_run cfg' ctx.prepared).Ooo.cycles
          in
          (* base >= relaxed, up to slack *)
          ge_outcome ~tol ~scale:(scale_of ctx) ~engine:"config" ~detail base
            relaxed)
        (relaxations ctx.cfg))

let law_sweep_baseline_identity =
  let tol = Exact in
  mk "sweep-baseline-identity" Differential tol
    "a sweep's unperturbed point reproduces its engine's baseline bit-exactly"
    (fun ctx ->
      let p = Sparam.find_exn "window" in
      let axes = [ Sparam.axis p [ p.Sparam.p_get ctx.cfg ] ] in
      let sweep engine =
        (Sweep.run ~engine ~cfg:ctx.cfg ~prepared:ctx.prepared ~axes ())
          .Sweep.sw_baseline
      in
      [
        eq_outcome ~tol ~scale:(scale_of ctx) ~engine:"multisim"
          ~detail:"sweep-baseline" (sweep Sweep.Sim)
          (float_of_int ctx.baseline.Ooo.cycles);
        eq_outcome ~tol ~scale:(scale_of ctx) ~engine:"fullgraph"
          ~detail:"sweep-baseline" (sweep Sweep.Graph_cp)
          (float_of_int (Graph.critical_length ctx.graph));
      ])

let law_sweep_relax_monotone =
  let tol = Rel (0.02, 5.0) in
  mk "sweep-relax-monotone" Metamorphic tol
    "sweep curves are monotone non-increasing in the relaxation direction"
    (fun ctx ->
      let axis_of name values =
        let p = Sparam.find_exn name in
        Sparam.axis p
          (List.sort_uniq compare
             (List.filter (fun v -> v >= p.Sparam.p_min) values))
      in
      let value name = (Sparam.find_exn name).Sparam.p_get ctx.cfg in
      let w = value "window"
      and f = value "fetch_bw"
      and ml = value "mem_lat" in
      let axes =
        [
          axis_of "window" [ w; 2 * w ];
          axis_of "fetch_bw" [ f; f + 2 ];
          axis_of "mem_lat" [ ml / 2; ml ];
        ]
      in
      let r =
        Sweep.run ~engine:Sweep.Sim ~cfg:ctx.cfg ~prepared:ctx.prepared ~axes
          ()
      in
      List.concat_map
        (fun (c : Sweep.curve) ->
          let evaluated =
            List.filter_map
              (fun (pt : Sweep.point) ->
                match pt.Sweep.pt_outcome with
                | Ok cy -> Some (pt.pt_value, cy)
                | Error _ -> None)
              c.Sweep.cv_points
          in
          let ordered =
            match c.cv_param.Sparam.p_dir with
            | Sparam.More_is_better -> evaluated
            | Sparam.Less_is_better -> List.rev evaluated
          in
          (* cycles at each step of relaxation must not grow *)
          let rec pairs acc = function
            | (v1, c1) :: ((v2, c2) :: _ as tl) ->
              pairs
                (ge_outcome ~tol ~scale:(scale_of ctx) ~engine:"multisim"
                   ~detail:
                     (Printf.sprintf "%s %d->%d" c.cv_param.Sparam.p_name v1
                        v2)
                   c1 c2
                :: acc)
                tl
            | _ -> List.rev acc
          in
          pairs [] ordered)
        r.Sweep.sw_curves)

let law_determinism =
  let tol = Exact in
  mk "determinism" Determinism tol
    "re-running any engine on the same inputs reproduces it bit-identically"
    (fun ctx ->
      let scale = scale_of ctx in
      let sim_again =
        float_of_int (Runner.baseline_run ctx.cfg ctx.prepared).Ooo.cycles
      in
      let cl = Graph.critical_length ~ideal:Set.full ctx.graph in
      let swept = (Graph.eval_subsets ctx.graph [| Set.full |]).(0) in
      let profile2 =
        Profile.profile ~opts:ctx.prof_opts ctx.cfg ctx.prepared.program
          ctx.prepared.trace ctx.prepared.evts ctx.baseline
      in
      let pr2 = Profile.oracle profile2 in
      [
        eq_outcome ~tol ~scale ~engine:"multisim" ~detail:"baseline-rerun"
          sim_again
          (float_of_int ctx.baseline.Ooo.cycles);
        eq_outcome ~tol ~scale ~engine:"fullgraph" ~detail:"eval-vs-sweep"
          (float_of_int cl) (float_of_int swept);
        eq_outcome ~tol ~scale ~engine:"profiler" ~detail:"rebuild-fragments"
          (float_of_int profile2.Profile.stats.fragments_built)
          (float_of_int ctx.profile.Profile.stats.fragments_built);
        eq_outcome ~tol ~scale ~engine:"profiler" ~detail:"rebuild-empty"
          (Cost.query pr2 Set.empty) (Cost.query ctx.pr Set.empty);
        eq_outcome ~tol ~scale ~engine:"profiler" ~detail:"rebuild-full"
          (Cost.query pr2 Set.full) (Cost.query ctx.pr Set.full);
      ])

let law_sim_empty_exact =
  let tol = Exact in
  mk "sim-empty-exact" Differential tol
    "multisim with nothing idealized is the baseline simulation" (fun ctx ->
      [
        eq_outcome ~tol ~scale:(scale_of ctx) ~engine:"multisim"
          ~detail:"baseline" (Cost.query ctx.sim Set.empty)
          (float_of_int ctx.baseline.Ooo.cycles);
      ])

let law_graph_reeval_exact =
  let tol = Exact in
  mk "graph-reeval-exact" Differential tol
    "fullgraph with nothing idealized is the graph's critical path"
    (fun ctx ->
      [
        eq_outcome ~tol ~scale:(scale_of ctx) ~engine:"fullgraph"
          ~detail:"baseline" (Cost.query ctx.fg Set.empty)
          (float_of_int (Graph.critical_length ctx.graph));
      ])

let law_prof_reeval_exact =
  let tol = Exact in
  mk "prof-reeval-exact" Differential tol
    "profiler with nothing idealized sums its fragments' critical paths"
    (fun ctx ->
      let total =
        Array.fold_left
          (fun acc g -> acc + Graph.critical_length g)
          0 ctx.profile.Profile.graphs
      in
      [
        eq_outcome ~tol ~scale:(scale_of ctx) ~engine:"profiler"
          ~detail:"baseline" (Cost.query ctx.pr Set.empty) (float_of_int total);
      ])

let law_diff_baseline_graph_sim =
  let tol = Rel (0.15, 10.0) in
  mk "diff-baseline-graph-sim" Differential tol
    "graph critical path tracks simulated cycles (Table 7 agreement)"
    (fun ctx ->
      [
        eq_outcome ~tol ~scale:(scale_of ctx) ~engine:"fullgraph"
          ~detail:"baseline" (Cost.query ctx.fg Set.empty) (Cost.query ctx.sim Set.empty);
      ])

let law_diff_cost_graph_sim =
  (* Measured spread on the seed suite: kernels stay within ~4% of the
     baseline, but bandwidth/window attribution on dense generated
     programs diverges up to ~19% (the graph charges contention to BW
     edges that the simulator's what-if run simply schedules around). *)
  let tol = Rel (0.25, 50.0) in
  mk "diff-cost-graph-sim" Differential tol
    "per-category costs agree between fullgraph and multisim within a bound"
    (fun ctx ->
      List.map
        (fun c ->
          let s = Set.singleton c in
          eq_outcome ~tol ~scale:(scale_of ctx) ~engine:"fullgraph"
            ~detail:(Category.name c) (Cost.cost ctx.fg s)
            (Cost.cost ctx.sim s))
        Category.all)

let law_sliced_eval_exact =
  let tol = Exact in
  mk "sliced-eval-exact" Differential tol
    "bit-sliced subset evaluation matches the scalar evaluator on every \
     subset, at any lane count"
    (fun ctx ->
      let scale = scale_of ctx in
      let sets = Array.of_list (Set.subsets Set.full) in
      let reference = Graph.eval_subsets_scalar ctx.graph sets in
      let check ~detail arr =
        (* report the first mismatching subset, or the matching totals *)
        let rec first i =
          if i >= Array.length sets then None
          else if arr.(i) <> reference.(i) then Some i
          else first (i + 1)
        in
        match first 0 with
        | Some i ->
          eq_outcome ~tol ~scale ~engine:"fullgraph"
            ~detail:(Printf.sprintf "%s %s" detail (Set.name sets.(i)))
            (float_of_int arr.(i))
            (float_of_int reference.(i))
        | None ->
          let total a = float_of_int (Array.fold_left ( + ) 0 a) in
          eq_outcome ~tol ~scale ~engine:"fullgraph" ~detail (total arr)
            (total reference)
      in
      (* lane counts straddle the packing width (3/word) and the chunk
         boundary at 64; the default is the tuned production setting *)
      check ~detail:"default" (Graph.eval_subsets ctx.graph sets)
      :: List.map
           (fun lanes ->
             check
               ~detail:(Printf.sprintf "lanes=%d" lanes)
               (Graph.eval_slices ~lanes ctx.graph sets))
           [ 1; 3; 17; 64 ])

let law_diff_share_prof_graph =
  let tol = Abs 20.0 in
  mk "diff-share-prof-graph" Differential tol
    "breakdown shares (% of cycles) agree between profiler and fullgraph"
    (fun ctx ->
      let frags = ctx.profile.Profile.stats.fragments_built in
      if frags < 3 then
        [
          skip ~engine:"profiler" ~detail:"-"
            (Printf.sprintf "only %d fragments" frags);
        ]
      else
        let b_fg = Cost.query ctx.fg Set.empty and b_pr = Cost.query ctx.pr Set.empty in
        if b_fg <= 0. || b_pr <= 0. then
          [ skip ~engine:"profiler" ~detail:"-" "empty baseline" ]
        else if Float.abs (b_pr -. b_fg) > 0.15 *. b_fg then
          (* the fragments missed a systematic latency contributor (e.g.
             clustered misses none of the samples covered), so every share
             is distorted by the bad denominator — comparing them would
             test the sampling luck, not the engines *)
          [
            skip ~engine:"profiler" ~detail:"-"
              (Printf.sprintf "profiler baseline %.0f vs graph %.0f (>15%%)"
                 b_pr b_fg);
          ]
        else
          List.filter_map
            (fun c ->
              let s = Set.singleton c in
              let share_fg = 100. *. Cost.cost ctx.fg s /. b_fg in
              let share_pr = 100. *. Cost.cost ctx.pr s /. b_pr in
              (* tiny shares carry more sampling noise than signal *)
              if share_fg < 8. then None
              else
                Some
                  (eq_outcome ~tol ~scale:(scale_of ctx) ~engine:"profiler"
                     ~detail:(Category.name c) share_pr share_fg))
            Category.all)

(* --- streaming laws --- *)

(* Feed the streaming core exactly the window the monolithic engines saw.
   A segment size well below the ROB window forces every seam kind
   (pinned structural edges, carried data/line floors, split miss
   windows). *)
let stream_over ctx ~segment_insns =
  Stream_core.analyze ~segment_insns ctx.cfg
    (Stream_source.of_arrays ctx.prepared.Runner.trace.Trace.instrs
       ctx.prepared.Runner.evts)

let law_stream_matches_monolithic =
  let tol = Exact in
  mk "stream-matches-monolithic" Streaming tol
    "segmented streaming aggregate is bit-identical to the fullgraph on \
     every subset" (fun ctx ->
      let r = stream_over ctx ~segment_insns:512 in
      let scale = scale_of ctx in
      List.map
        (fun s ->
          eq_outcome ~tol ~scale ~engine:"fullgraph" ~detail:(Set.name s)
            (float_of_int r.Stream_core.times.(s))
            (Cost.query ctx.fg s))
        (Set.subsets Set.full))

let law_stream_segment_invariance =
  let tol = Exact in
  mk "stream-segment-invariance" Streaming tol
    "halving or doubling the segment size leaves the streamed aggregate \
     bit-identical" (fun ctx ->
      let r0 = stream_over ctx ~segment_insns:512 in
      let scale = scale_of ctx in
      List.concat_map
        (fun seg ->
          let r = stream_over ctx ~segment_insns:seg in
          List.map
            (fun s ->
              eq_outcome ~tol ~scale ~engine:"stream"
                ~detail:(Printf.sprintf "seg=%d %s" seg (Set.name s))
                (float_of_int r.Stream_core.times.(s))
                (float_of_int r0.Stream_core.times.(s)))
            (Set.subsets pow_set))
        [ 256; 1024 ])

let all =
  [
    law_empty_zero;
    law_singleton_identity;
    law_icost_defs_agree;
    law_powerset_complete;
    law_idle_class_zero;
    law_cost_nonneg;
    law_cost_nonneg_sim;
    law_cost_monotone;
    law_cost_monotone_sim;
    law_idle_resource_noop;
    law_relax_monotone;
    law_sweep_baseline_identity;
    law_sweep_relax_monotone;
    law_determinism;
    law_sim_empty_exact;
    law_graph_reeval_exact;
    law_prof_reeval_exact;
    law_diff_baseline_graph_sim;
    law_diff_cost_graph_sim;
    law_sliced_eval_exact;
    law_diff_share_prof_graph;
    law_stream_matches_monolithic;
    law_stream_segment_invariance;
  ]

let find id = List.find_opt (fun l -> l.id = id) all
let names = List.map (fun l -> l.id) all

let violations results =
  List.concat_map
    (fun (law, outcomes) ->
      List.filter_map
        (fun o ->
          match o.status with Fail _ -> Some (law, o) | Pass | Skip _ -> None)
        outcomes)
    results

let run_all ?only ctx =
  let laws =
    match only with
    | None -> all
    | Some ids -> List.filter (fun l -> List.mem l.id ids) all
  in
  List.map (fun l -> (l, l.run ctx)) laws
