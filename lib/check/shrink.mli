(** Greedy counterexample minimization.

    Given a failing case and a predicate that re-runs the violated law,
    repeatedly applies size-reducing moves — halve the measured window,
    drop the warm-up, fall back to the base machine variant, halve a
    generated program's seed — keeping a move whenever the violation
    survives it.  Every move strictly shrinks a well-founded size measure,
    so the loop terminates without an attempt budget; [max_attempts]
    exists because each predicate call re-simulates the case. *)

val size : Case.t -> int
(** The measure the moves decrease (window + warm-up + variant/seed
    weight); exposed for tests. *)

val minimize :
  ?max_attempts:int ->
  still_fails:(Case.t -> bool) ->
  Case.t ->
  Case.t * int
(** [minimize ~still_fails case] returns the minimized case and the
    number of predicate evaluations spent.  [still_fails case] must be
    true on entry (the result is only meaningful then); [max_attempts]
    defaults to 60. *)
