(** The conformance harness behind [icost check].

    Enumerates cases (registry kernels plus generated programs per
    {!Gen.profile}), evaluates the whole {!Laws} table on each in
    parallel via {!Icost_util.Pool}, and on any violation greedily
    shrinks the case ({!Shrink}) and emits a replayable artifact
    ({!Repro}).

    {b Deliberate violations.}  The fullgraph oracle is wrapped with the
    [check.perturb_graph] fault point ({!Icost_util.Fault}): arming it
    (e.g. [ICOST_FAULTS=check.perturb_graph;seed=1]) adds a constant
    1000-cycle error to every non-empty subset evaluation, which breaks
    the degeneracy/non-negativity laws while leaving the tautological
    power-set identities intact — exactly the separation the law table is
    supposed to provide.  Because the perturbation is applied under the
    memoization layer and fires on every hit, a violation it causes
    replays bit-identically. *)

type opts = {
  master_seed : int;  (** seeds generated programs and the samplers *)
  budget_s : float;  (** wall-clock budget; late cases are skipped *)
  benches : string list;  (** kernels to check; [[]] = whole registry *)
  gen_per_profile : int;  (** generated cases per {!Gen.profile} *)
  warmup : int;
  measure : int;
  only : string list option;  (** law ids to evaluate; [None] = all *)
  artifact_dir : string option;  (** where counterexamples are written *)
}

val default_opts : opts
(** seed 42, 60 s budget, all kernels, 2 generated cases per profile,
    20k warm-up, 4k measured, every law, no artifact directory. *)

val cases_of_opts : opts -> Case.t list
(** The deterministic case list the run will evaluate, kernels first. *)

type case_outcome = {
  case : Case.t;
  results : (Laws.law * Laws.outcome list) list;
  crashed : string option;  (** an engine raised — itself a conformance bug *)
  deadline_skipped : bool;
}

type artifact = {
  file : string option;  (** [None] when no [artifact_dir] was given *)
  repro : Repro.t;
  shrink_attempts : int;
}

type summary = {
  outcomes : case_outcome list;
  passed : int;  (** individual law outcomes *)
  skipped : int;
  failed : int;
  crashed : int;  (** cases whose evaluation raised *)
  deadline_skipped : int;  (** cases never evaluated (budget) *)
  artifacts : artifact list;
  elapsed_s : float;
}

val ok : summary -> bool
(** No failures and no crashes (deadline skips and law skips are fine). *)

val run : opts -> summary

val render : summary -> string
(** Human report: per-law pass/skip/fail table, then each violation with
    its shrunken reproducer and artifact path. *)

val replay : string -> (string, string) result
(** Replay an artifact file: re-arm the recorded fault spec, rebuild the
    case, evaluate the recorded law, and compare the observed value
    bit-for-bit.  [Ok msg] iff the identical violation reproduces. *)
