(** One conformance-check case: everything needed to rebuild a prepared
    workload and its oracles from scratch, deterministically.  A case is
    the unit the harness fans out over, the thing the shrinker minimizes,
    and the payload a replay artifact embeds. *)

module Config = Icost_uarch.Config
module Sampler = Icost_profiler.Sampler
module Workload = Icost_workloads.Workload
module Runner = Icost_experiments.Runner
module Json = Icost_service.Json

(** What runs: a named kernel from the registry, or a generated program
    identified by (profile, seed). *)
type target = Bench of string | Generated of Gen.profile * int

type t = {
  target : target;
  variant : string;  (** machine variant: base | dl1 | wakeup | bmisp *)
  warmup : int;  (** instructions discarded before the measured window *)
  measure : int;  (** measured-window length (instructions) *)
  sample_seed : int;  (** profiler sampling seed *)
}

val variants : string list
(** ["base"; "dl1"; "wakeup"; "bmisp"] — same names as the service. *)

val config_of_variant : string -> Config.t option

val name : t -> string
(** Short slug, e.g. ["gcc-base-n4000"] — stable, filesystem-safe. *)

val describe : t -> string
(** One human line with every field. *)

val workload : t -> Workload.t
val config : t -> Config.t

val prof_opts : t -> Sampler.opts
(** Sampling options scaled to the case's window so even small shrunken
    cases yield several fragments. *)

val prepare : t -> Runner.prepared
(** Interpret, annotate and slice — deterministic in the case alone. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
