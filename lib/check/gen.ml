(* Seeded random-workload generation.  See gen.mli.

   The Mixed profile must stay draw-for-draw identical to the historical
   test-suite generator (test/gen_program.ml before it was promoted
   here): QCheck fuzz regressions reference programs by seed alone, so
   changing the PRNG consumption order for Mixed would silently retire
   every previously-exercised program. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

type profile = Mixed | Loop_heavy | Alias_heavy | Branch_heavy

let all_profiles = [ Mixed; Loop_heavy; Alias_heavy; Branch_heavy ]

let profile_name = function
  | Mixed -> "mixed"
  | Loop_heavy -> "loop"
  | Alias_heavy -> "alias"
  | Branch_heavy -> "branch"

let profile_of_name = function
  | "mixed" -> Some Mixed
  | "loop" -> Some Loop_heavy
  | "alias" -> Some Alias_heavy
  | "branch" -> Some Branch_heavy
  | _ -> None

let data_base = 0x0100_0000

(* Cumulative op-mix thresholds out of 100 (a draw below [alu] emits an
   ALU op, below [shift] a shift/compare, and so on), plus the structural
   knobs that give each profile its character. *)
type mix = {
  alu : int;
  shift : int;
  long : int;
  load : int;
  store : int;
  branch : int;
  data_words : int;  (** words in the guarded data region *)
  scratch_regs : int;  (** scratch registers r1..r[scratch_regs] *)
  nested_loops : bool;  (** counted loops may nest one level *)
  dispatch : bool;  (** indirect jump-table dispatch at the top of main *)
}

let mix_of_profile = function
  | Mixed ->
    { alu = 30; shift = 38; long = 46; load = 66; store = 78; branch = 90;
      data_words = 4096; scratch_regs = 12; nested_loops = false;
      dispatch = false }
  | Loop_heavy ->
    { alu = 25; shift = 31; long = 39; load = 55; store = 63; branch = 70;
      data_words = 2048; scratch_regs = 10; nested_loops = true;
      dispatch = false }
  | Alias_heavy ->
    { alu = 15; shift = 19; long = 23; load = 55; store = 85; branch = 92;
      data_words = 64; scratch_regs = 12; nested_loops = false;
      dispatch = false }
  | Branch_heavy ->
    { alu = 20; shift = 26; long = 30; load = 42; store = 50; branch = 88;
      data_words = 1024; scratch_regs = 12; nested_loops = false;
      dispatch = true }

(* register allocation: r1..r12 scratch (r11/r12 reserved as inner-loop
   counters when loops nest), r13 outer loop counter, r14 address temp,
   r15 data base, r30 sp, r31 ra *)
let scratch m prng = 1 + Prng.int prng m.scratch_regs
let addr_tmp = 14
let base_reg = 15
let outer_counter = 13
let inner_counter = 12

let counted a ~tag ~counter ~count body =
  Asm.li a ~rd:counter count;
  Asm.label a ("loop_" ^ tag);
  body ();
  Asm.addi a ~rd:counter ~rs1:counter (-1);
  Asm.bne a ~rs1:counter ~rs2:Isa.reg_zero ("loop_" ^ tag)

let emit_guarded_addr m a prng =
  (* addr_tmp <- data_base + (scratch & mask), word aligned *)
  let src = scratch m prng in
  Asm.andi a ~rd:addr_tmp ~rs1:src (((m.data_words - 1) * 8) land lnot 7);
  Asm.add a ~rd:addr_tmp ~rs1:base_reg ~rs2:addr_tmp

let emit_op m a prng ~labels ~depth =
  let n = Prng.int prng 100 in
  if n < m.alu then begin
    (* plain ALU *)
    let op = Prng.choose prng [| Isa.Add; Isa.Sub; Isa.And; Isa.Or; Isa.Xor |] in
    let rd = scratch m prng and rs1 = scratch m prng and rs2 = scratch m prng in
    if Prng.bool prng 0.5 then Asm.alu a op ~rd ~rs1 ~rs2
    else Asm.alui a op ~rd ~rs1 (Prng.int_range prng (-64) 64)
  end
  else if n < m.shift then begin
    (* shifts and compares *)
    let rd = scratch m prng and rs1 = scratch m prng in
    if Prng.bool prng 0.5 then Asm.shli a ~rd ~rs1 (Prng.int prng 8)
    else Asm.slti a ~rd ~rs1 (Prng.int_range prng (-32) 32)
  end
  else if n < m.long then begin
    (* long ALU *)
    let rd = scratch m prng and rs1 = scratch m prng and rs2 = scratch m prng in
    match Prng.int prng 4 with
    | 0 -> Asm.mul a ~rd ~rs1 ~rs2
    | 1 -> Asm.div a ~rd ~rs1 ~rs2
    | 2 -> Asm.fadd a ~rd ~rs1 ~rs2
    | _ -> Asm.fmul a ~rd ~rs1 ~rs2
  end
  else if n < m.load then begin
    (* guarded load *)
    emit_guarded_addr m a prng;
    Asm.load a ~rd:(scratch m prng) ~base:addr_tmp ~offset:(8 * Prng.int prng 4)
  end
  else if n < m.store then begin
    (* guarded store *)
    emit_guarded_addr m a prng;
    Asm.store a ~rs:(scratch m prng) ~base:addr_tmp ~offset:(8 * Prng.int prng 4)
  end
  else if n < m.branch && labels <> [] then begin
    (* forward data-dependent branch to a known label *)
    let target = Prng.choose prng (Array.of_list labels) in
    let cond = Prng.choose prng [| Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge |] in
    Asm.branch a cond ~rs1:(scratch m prng) ~rs2:(scratch m prng) target
  end
  else if depth > 0 then
    (* nothing: handled by block structure (loops/calls) *)
    Asm.addi a ~rd:(scratch m prng) ~rs1:(scratch m prng) 1
  else Asm.addi a ~rd:(scratch m prng) ~rs1:(scratch m prng) 1

(* one basic block: a skip label so forward branches always land safely *)
let emit_block m a prng ~tag ~depth =
  let skip = Printf.sprintf "skip_%s" tag in
  let ops = 3 + Prng.int prng 8 in
  for _ = 1 to ops do
    emit_op m a prng ~labels:[ skip ] ~depth
  done;
  Asm.label a skip

(* a counted loop whose body is a block; Loop_heavy may nest one more
   counted loop inside, on its own counter register *)
let emit_loop m a prng ~tag =
  let count = 2 + Prng.int prng 6 in
  counted a ~tag ~counter:outer_counter ~count (fun () ->
      if m.nested_loops && Prng.bool prng 0.5 then
        counted a ~tag:(tag ^ "_n") ~counter:inner_counter
          ~count:(2 + Prng.int prng 4)
          (fun () -> emit_block m a prng ~tag:(tag ^ "_in") ~depth:0)
      else emit_block m a prng ~tag:(tag ^ "_in") ~depth:0)

(* Branch_heavy only: a four-entry jump table in data memory just past the
   guarded region (stores are masked into [0, data_words), so the table
   cannot be overwritten), dispatching to one of the first four blocks *)
let emit_dispatch m a prng ~num_blocks =
  let table = data_base + (8 * m.data_words) in
  for i = 0 to 3 do
    Asm.init_label a ~addr:(table + (8 * i)) (Printf.sprintf "blk_%d" (i mod num_blocks))
  done;
  Asm.andi a ~rd:addr_tmp ~rs1:(scratch m prng) 24;
  Asm.alui a Isa.Add ~rd:addr_tmp ~rs1:addr_tmp table;
  Asm.load a ~rd:addr_tmp ~base:addr_tmp ~offset:0;
  Asm.jr a ~rs:addr_tmp

let generate ?(profile = Mixed) seed : Icost_isa.Program.t =
  let m = mix_of_profile profile in
  let prng = Prng.create seed in
  let a =
    Asm.create ~name:(Printf.sprintf "gen_%s_%d" (profile_name profile) seed) ()
  in
  (* data region: random contents *)
  for i = 0 to m.data_words - 1 do
    Asm.init_word a ~addr:(data_base + (8 * i)) ~value:(Prng.int prng 1_000_000)
  done;
  let num_subs = Prng.int prng 3 in
  let num_blocks =
    if m.dispatch then 4 + Prng.int prng 4 else 2 + Prng.int prng 5
  in
  (* entry: initialize registers, jump over subroutines *)
  Asm.li a ~rd:base_reg data_base;
  Asm.li a ~rd:Isa.reg_sp 0x7000_0000;
  for r = 1 to 12 do
    Asm.li a ~rd:r (Prng.int prng 4096)
  done;
  Asm.jmp a "main";
  (* leaf subroutines *)
  for s = 0 to num_subs - 1 do
    Asm.label a (Printf.sprintf "sub_%d" s);
    emit_block m a prng ~tag:(Printf.sprintf "s%d" s) ~depth:1;
    Asm.ret a
  done;
  (* main: an endless outer loop over blocks, with counted inner loops and
     calls sprinkled in *)
  Asm.label a "main";
  if m.dispatch then emit_dispatch m a prng ~num_blocks;
  for b = 0 to num_blocks - 1 do
    let tag = Printf.sprintf "b%d" b in
    if m.dispatch then Asm.label a (Printf.sprintf "blk_%d" b);
    match Prng.int prng 3 with
    | 0 when num_subs > 0 ->
      Asm.call a (Printf.sprintf "sub_%d" (Prng.int prng num_subs))
    | 1 -> emit_loop m a prng ~tag
    | _ -> emit_block m a prng ~tag ~depth:1
  done;
  Asm.jmp a "main";
  Asm.assemble a
