(** Architectural interpreter.

    Executes a {!Program.t} at the architectural level (registers + memory,
    no timing) and records the committed dynamic instruction stream as a
    {!Trace.t}.  The interpreter is the ground truth that both the timing
    simulator and the shotgun profiler's reconstruction are measured
    against. *)

exception Stuck of string

type config = {
  max_instrs : int;  (** stop after this many dynamic instructions *)
  trap_div_by_zero : bool;
      (** if false, division by zero yields 0 instead of raising *)
}

let default_config = { max_instrs = 100_000; trap_div_by_zero = false }

type state = {
  regs : int array;
  mem : (int, int) Hashtbl.t;
  mutable pc_ix : int;  (** static index of the next instruction *)
}

let init_state (p : Program.t) =
  let mem = Hashtbl.create 4096 in
  List.iter (fun (addr, v) -> Hashtbl.replace mem addr v) p.mem_image;
  { regs = Array.make Isa.num_regs 0; mem; pc_ix = p.entry }

let read_reg st r = if r = Isa.reg_zero then 0 else st.regs.(r)

let write_reg st r v = if r <> Isa.reg_zero then st.regs.(r) <- v

let read_mem st addr = Option.value ~default:0 (Hashtbl.find_opt st.mem addr)

let write_mem st addr v = Hashtbl.replace st.mem addr v

let eval_alu cfg op a b =
  match op with
  | Isa.Add -> a + b
  | Isa.Sub -> a - b
  | Isa.Mul -> a * b
  | Isa.Div ->
    if b = 0 then if cfg.trap_div_by_zero then raise (Stuck "division by zero") else 0
    else a / b
  | Isa.And -> a land b
  | Isa.Or -> a lor b
  | Isa.Xor -> a lxor b
  | Isa.Shl -> a lsl (b land 62)
  | Isa.Shr -> a lsr (b land 62)
  | Isa.Slt -> if a < b then 1 else 0

(* Floating-point values live in the integer register file as small integer
   "payloads"; the FPU ops perform the integer analogue.  Only latency class
   matters to the timing model, not numeric semantics. *)
let eval_fpu op a b =
  match op with
  | Isa.Fadd -> a + b
  | Isa.Fmul -> (a * b) land max_int
  | Isa.Fdiv -> if b = 0 then 0 else a / b

let eval_cond cond a b =
  match cond with
  | Isa.Eq -> a = b
  | Isa.Ne -> a <> b
  | Isa.Lt -> a < b
  | Isa.Ge -> a >= b

(* Stateful stepper: the run loop body factored out so callers can pull
   dynamic instructions one at a time (the streaming pipeline interprets
   unbounded traces without materializing them).  [run] below is a thin
   wrapper, so both paths share one source of truth. *)
type stepper = {
  s_cfg : config;
  s_program : Program.t;
  s_len : int;
  s_st : state;
  (* last_writer.(r) = seq of the most recent dynamic instruction that wrote
     register r, or -1 if none yet. *)
  s_last_writer : int array;
  (* last_store maps byte address -> seq of most recent store to it. *)
  s_last_store : (int, int) Hashtbl.t;
  mutable s_count : int;
  mutable s_halted : bool;
}

let stepper ?(config = default_config) (p : Program.t) : stepper =
  {
    s_cfg = config;
    s_program = p;
    s_len = Program.length p;
    s_st = init_state p;
    s_last_writer = Array.make Isa.num_regs (-1);
    s_last_store = Hashtbl.create 1024;
    s_count = 0;
    s_halted = false;
  }

let step (s : stepper) : Trace.dyn option =
  if s.s_halted || s.s_count >= s.s_cfg.max_instrs then None
  else begin
    let st = s.s_st in
    let ix = st.pc_ix in
    if ix < 0 || ix >= s.s_len then
      raise (Stuck (Printf.sprintf "PC fell off the program at index %d" ix));
    let instr = Program.fetch s.s_program ix in
    let seq = s.s_count in
    let pc = Isa.pc_of_index ix in
    let reg_deps =
      List.filter_map
        (fun r ->
          let w = s.s_last_writer.(r) in
          if w >= 0 then Some (r, w) else None)
        (Isa.sources instr)
    in
    let mem_addr = ref None in
    let mem_dep = ref None in
    let taken = ref false in
    let next_ix = ref (ix + 1) in
    match instr with
    | Isa.Halt ->
      s.s_halted <- true;
      None
    | _ ->
      (match instr with
       | Isa.Alu { op; rd; rs1; src2 } ->
         let a = read_reg st rs1 in
         let b = match src2 with Isa.Reg r -> read_reg st r | Isa.Imm v -> v in
         write_reg st rd (eval_alu s.s_cfg op a b)
       | Isa.Fpu { op; rd; rs1; rs2 } ->
         write_reg st rd (eval_fpu op (read_reg st rs1) (read_reg st rs2))
       | Isa.Load { rd; base; offset } ->
         let addr = read_reg st base + offset in
         mem_addr := Some addr;
         mem_dep := Hashtbl.find_opt s.s_last_store addr;
         write_reg st rd (read_mem st addr)
       | Isa.Store { rs; base; offset } ->
         let addr = read_reg st base + offset in
         mem_addr := Some addr;
         write_mem st addr (read_reg st rs);
         Hashtbl.replace s.s_last_store addr seq
       | Isa.Branch { cond; rs1; rs2; target } ->
         if eval_cond cond (read_reg st rs1) (read_reg st rs2) then begin
           taken := true;
           next_ix := target
         end
       | Isa.Jump { target } ->
         taken := true;
         next_ix := target
       | Isa.Call { target } ->
         taken := true;
         write_reg st Isa.reg_ra (Isa.pc_of_index (ix + 1));
         next_ix := target
       | Isa.Ret ->
         taken := true;
         next_ix := Isa.index_of_pc (read_reg st Isa.reg_ra)
       | Isa.Jump_reg { rs } ->
         taken := true;
         next_ix := Isa.index_of_pc (read_reg st rs)
       | Isa.Halt -> assert false);
      (match Isa.dest instr with
       | Some rd -> s.s_last_writer.(rd) <- seq
       | None -> ());
      st.pc_ix <- !next_ix;
      s.s_count <- s.s_count + 1;
      Some
        {
          Trace.seq;
          static_ix = ix;
          pc;
          instr;
          reg_deps;
          mem_addr = !mem_addr;
          mem_dep = !mem_dep;
          taken = !taken;
          next_pc = Isa.pc_of_index !next_ix;
        }
  end

let stepped s = s.s_count

let halted s = s.s_halted

(** [run ?config program] executes [program] and returns its trace. *)
let run ?(config = default_config) (p : Program.t) : Trace.t =
  let s = stepper ~config p in
  let out = ref [] in
  let rec loop () =
    match step s with
    | Some d ->
      out := d :: !out;
      loop ()
    | None -> ()
  in
  loop ();
  { Trace.program = p; instrs = Array.of_list (List.rev !out); halted = s.s_halted }
