(** Architectural interpreter: executes a program at the register/memory
    level (no timing) and records the committed dynamic instruction stream
    — the ground truth for the timing simulator and the profiler's
    reconstruction. *)

exception Stuck of string
(** The program counter left the program, or an enabled trap fired. *)

type config = {
  max_instrs : int;  (** stop after this many dynamic instructions *)
  trap_div_by_zero : bool;  (** if false, division by zero yields 0 *)
}

val default_config : config
(** 100k instructions, division by zero yields 0. *)

val run : ?config:config -> Program.t -> Trace.t
(** Execute the program from its entry point.  [Halt] ends the run early
    (and is not recorded in the trace).  @raise Stuck on invalid control
    flow. *)

(** {1 Streaming}

    A stateful stepper over the same interpreter loop, for callers that
    consume the dynamic stream one instruction at a time without
    materializing a {!Trace.t} ([run] is implemented on top of it, so the
    two are bit-identical). *)

type stepper

val stepper : ?config:config -> Program.t -> stepper
(** Fresh interpreter state positioned at the program entry. *)

val step : stepper -> Trace.dyn option
(** Execute and return the next committed instruction; [None] once the
    program halts or the [max_instrs] budget is exhausted.  @raise Stuck on
    invalid control flow. *)

val stepped : stepper -> int
(** Number of instructions committed so far. *)

val halted : stepper -> bool
(** True iff a [Halt] was executed. *)
