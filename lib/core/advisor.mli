(** Optimization advisor: turn a cost oracle into design recommendations
    (the "balanced machine" reading of the paper's introduction). *)

type recommendation =
  | Attack of { cat : Category.t; cost_pct : float }
      (** a primary bottleneck worth direct optimization *)
  | Attack_with of { cat : Category.t; partner : Category.t; icost_pct : float }
      (** parallel interaction: only a joint attack realizes the gain *)
  | Indirect_lever of { cat : Category.t; partner : Category.t; icost_pct : float }
      (** serial interaction: improving [partner] also hides [cat] *)
  | Deoptimize of { cat : Category.t; cost_pct : float }
      (** near-zero cost and interactions: candidate for shrinking *)
  | Resize of {
      resource : string;  (** a sweepable machine parameter, e.g. ["window"] *)
      from_units : int;  (** the baseline provisioning *)
      to_units : int;  (** the saturation knee of the sweep curve *)
      cycles_saved : float;  (** baseline cycles minus cycles at the knee *)
      cycles_per_unit : float;  (** marginal ROI of the resize, [cycles_saved] per unit *)
    }
      (** quantified hardware resize from a parametric sensitivity sweep
          ({!Icost_sensitivity.Sweep}): grow (or shrink, when [to_units] is
          on the baseline's constrained side) the resource to its saturation
          knee.  Constructed by the sweep engine, not by {!analyze} — the
          cost oracle alone cannot price partial provisioning. *)

type report = {
  baseline : float;
  costs : (Category.t * float) list;  (** percent of baseline, descending *)
  interactions : (Category.t * Category.t * float) list;  (** percent *)
  recommendations : recommendation list;
}

(** Decision thresholds, as percent of execution time. *)
type thresholds = {
  bottleneck : float;  (** individual cost above this is a bottleneck *)
  interaction : float;  (** |icost| above this is significant *)
  negligible : float;  (** cost and interactions below this allow shrinking *)
}

val default_thresholds : thresholds
(** bottleneck 10%, interaction 2%, negligible 1%. *)

val analyze : ?thresholds:thresholds -> Cost.oracle -> report

val recommendation_to_string : recommendation -> string
val report_to_string : report -> string
