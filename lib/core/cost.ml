(** Costs and interaction costs (Section 2 of the paper).

    The cost of a set of events [S] is the speedup obtained from idealizing
    all events in [S] together:

    {[ cost(S) = t_base - t(S idealized) ]}

    This module is parameterized over a *cost oracle*: any function from a
    category set to the execution time with that set idealized.  Three
    oracles exist in this repository — multiple idealized simulations
    ({!Icost_sim}), dependence-graph analysis ({!Icost_depgraph}) and the
    shotgun profiler ({!Icost_profiler}) — and they all plug in here.

    The interaction cost of a set [U] is defined recursively (the paper's
    Section 2.2):

    {[
      icost({})  = 0
      icost(U)   = cost(U) - sum over proper subsets V of U of icost(V)
    ]}

    which has the closed inclusion-exclusion form

    {[ icost(U) = sum over subsets V of U of (-1)^(|U| - |V|) * cost(V) ]}

    For two events: [icost{a,b} = cost{a,b} - cost(a) - cost(b)].  A positive
    icost is a parallel interaction, a negative one a serial interaction,
    zero means independence. *)

(** An oracle maps a category set to the total execution time (in cycles)
    with that set idealized.  [oracle Category.Set.empty] is the baseline
    execution time. *)
type oracle = Category.Set.t -> float

(** Memoize an oracle.  Cost queries share many subset evaluations, and the
    underlying measurements (a graph pass or a whole simulation) are the
    expensive part.

    The memo table is mutex-guarded so one memoized oracle can be shared
    by concurrent {!Icost_util.Pool} jobs (oracles are closures over
    immutable traces/graphs, so the measurement itself is re-entrant).
    The underlying oracle runs {e outside} the lock: two domains racing on
    the same fresh subset may both measure it, but the oracle is a pure
    function of the subset, so both store the same value and the cache
    stays deterministic. *)
let c_hits = Icost_util.Telemetry.counter "oracle.cache_hits"
let c_misses = Icost_util.Telemetry.counter "oracle.cache_misses"
let c_evictions = Icost_util.Telemetry.counter "cost.memo_evictions"

(* Entries carry a last-use stamp; eviction scans for the smallest stamp.
   The scan is O(cap) but runs only when the table is full and a fresh
   subset arrives — with the default cap that is never (256 possible
   keys), and a deliberately tiny cap (tests) keeps the table itself
   tiny. *)
type memo_entry = { value : float; mutable stamp : int }

let memoize ?(cap = 512) (f : oracle) : oracle =
  let cap = max 1 cap in
  let tbl : (int, memo_entry) Hashtbl.t = Hashtbl.create 64 in
  let tick = ref 0 in
  let lock = Mutex.create () in
  fun s ->
    Mutex.lock lock;
    match Hashtbl.find_opt tbl s with
    | Some e ->
      incr tick;
      e.stamp <- !tick;
      Mutex.unlock lock;
      Icost_util.Telemetry.incr c_hits;
      e.value
    | None ->
      Mutex.unlock lock;
      Icost_util.Telemetry.incr c_misses;
      let v = f s in
      Mutex.lock lock;
      (* two domains racing on the same fresh subset both measured it and
         store the same value (the oracle is pure), so no double-count
         guard is needed; only make room for genuinely new keys *)
      if not (Hashtbl.mem tbl s) && Hashtbl.length tbl >= cap then begin
        let victim =
          Hashtbl.fold
            (fun k (e : memo_entry) acc ->
              match acc with
              | Some (_, stamp) when stamp <= e.stamp -> acc
              | _ -> Some (k, e.stamp))
            tbl None
        in
        match victim with
        | Some (k, _) ->
          Hashtbl.remove tbl k;
          Icost_util.Telemetry.incr c_evictions
        | None -> ()
      end;
      incr tick;
      Hashtbl.replace tbl s { value = v; stamp = !tick };
      Mutex.unlock lock;
      v

(** [cost oracle s] = baseline time minus time with [s] idealized. *)
let cost (oracle : oracle) (s : Category.Set.t) : float =
  oracle Category.Set.empty -. oracle s

(** Interaction cost by the recursive definition, memoized per subset
    within one call: the naive recursion recomputes [icost(V)] once per
    superset chain (super-exponential in [|U|]); computing subsets in
    cardinality order and summing from a table is [O(3^|U|)] additions,
    which for the full 8-category set is a few thousand operations. *)
let icost (oracle : oracle) (u : Category.Set.t) : float =
  if Category.Set.is_empty u then 0.
  else begin
    let tbl : (Category.Set.t, float) Hashtbl.t = Hashtbl.create 64 in
    let by_card =
      List.sort
        (fun a b -> compare (Category.Set.cardinal a) (Category.Set.cardinal b))
        (Category.Set.subsets u)
    in
    (* every proper subset of [v] has smaller cardinality, so its icost is
       already in the table when [v] is reached *)
    List.iter
      (fun v ->
        let value =
          if Category.Set.is_empty v then 0.
          else
            cost oracle v
            -. List.fold_left
                 (fun acc w -> acc +. Hashtbl.find tbl w)
                 0.
                 (Category.Set.proper_subsets v)
        in
        Hashtbl.replace tbl v value)
      by_card;
    Hashtbl.find tbl u
  end

(** Interaction cost by inclusion-exclusion (equal to {!icost}; used for
    cross-checking and because it is cheaper for large sets). *)
let icost_ie (oracle : oracle) (u : Category.Set.t) : float =
  let k = Category.Set.cardinal u in
  List.fold_left
    (fun acc v ->
      let sign = if (k - Category.Set.cardinal v) land 1 = 0 then 1. else -1. in
      acc +. (sign *. cost oracle v))
    0. (Category.Set.subsets u)

(** Pairwise interaction cost. *)
let icost_pair oracle a b =
  if a = b then invalid_arg "Cost.icost_pair: categories must differ";
  cost oracle (Category.Set.pair a b)
  -. cost oracle (Category.Set.singleton a)
  -. cost oracle (Category.Set.singleton b)

(** Interaction classification (Section 2.2). *)
type interaction = Independent | Parallel | Serial

(** [classify ?tolerance icost_value] decides the interaction type.
    [tolerance] absorbs measurement noise (default 0.5 cycles). *)
let classify ?(tolerance = 0.5) v =
  if v > tolerance then Parallel else if v < -.tolerance then Serial else Independent

let interaction_name = function
  | Independent -> "independent"
  | Parallel -> "parallel"
  | Serial -> "serial"

(** Aggregate cost of every category together (used for accounting checks:
    total time = sum of icosts over the power set of all categories plus the
    never-removable floor). *)
let cost_all oracle = cost oracle Category.Set.full

(** Sum of icosts over the power set of [u]; by construction this telescopes
    back to [cost u].  Exposed for property tests. *)
let sum_icosts_powerset oracle u =
  List.fold_left (fun acc v -> acc +. icost_ie oracle v) 0. (Category.Set.subsets u)
