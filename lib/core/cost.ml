(** Costs and interaction costs (Section 2 of the paper).

    The cost of a set of events [S] is the speedup obtained from idealizing
    all events in [S] together:

    {[ cost(S) = t_base - t(S idealized) ]}

    This module is parameterized over a *cost oracle*: a record pairing a
    point query (category set -> execution time with that set idealized)
    with an optional batch query that prices many idealizations at once.
    Three oracles exist in this repository — multiple idealized simulations
    ({!Icost_sim}), dependence-graph analysis ({!Icost_depgraph}) and the
    shotgun profiler ({!Icost_profiler}) — and they all plug in here.

    The interaction cost of a set [U] is defined recursively (the paper's
    Section 2.2):

    {[
      icost({})  = 0
      icost(U)   = cost(U) - sum over proper subsets V of U of icost(V)
    ]}

    which has the closed inclusion-exclusion form

    {[ icost(U) = sum over subsets V of U of (-1)^(|U| - |V|) * cost(V) ]}

    For two events: [icost{a,b} = cost{a,b} - cost(a) - cost(b)].  A positive
    icost is a parallel interaction, a negative one a serial interaction,
    zero means independence. *)

type oracle = {
  point : Category.Set.t -> float;
  batch : (Category.Set.t array -> float array) option;
}

let of_fn f = { point = f; batch = None }

let with_batch ~batch point = { point; batch = Some batch }

let query o s = o.point s

let query_batch o (sets : Category.Set.t array) : float array =
  match o.batch with Some b -> b sets | None -> Array.map o.point sets

(** Memoize an oracle.  Cost queries share many subset evaluations, and the
    underlying measurements (a graph pass or a whole simulation) are the
    expensive part.

    The memo table is mutex-guarded so one memoized oracle can be shared
    by concurrent {!Icost_util.Pool} jobs (oracles are closures over
    immutable traces/graphs, so the measurement itself is re-entrant).
    The underlying oracle runs {e outside} the lock: two domains racing on
    the same fresh subset may both measure it, but the oracle is a pure
    function of the subset, so both store the same value and the cache
    stays deterministic. *)
let c_hits = Icost_util.Telemetry.counter "oracle.cache_hits"
let c_misses = Icost_util.Telemetry.counter "oracle.cache_misses"
let c_evictions = Icost_util.Telemetry.counter "cost.memo_evictions"

(* Entries carry a last-use stamp; eviction scans for the smallest stamp.
   The scan is O(cap) but runs only when the table is full and a fresh
   subset arrives — with the default cap that is never (256 possible
   keys), and a deliberately tiny cap (tests) keeps the table itself
   tiny. *)
type memo_entry = { value : float; mutable stamp : int }

type memo = {
  m_tbl : (int, memo_entry) Hashtbl.t;
  m_lock : Mutex.t;
  m_cap : int;
  mutable m_tick : int;
  m_under : oracle;
}

let memo_make ?(cap = 512) (under : oracle) : memo =
  {
    m_tbl = Hashtbl.create 64;
    m_lock = Mutex.create ();
    m_cap = max 1 cap;
    m_tick = 0;
    m_under = under;
  }

(* Insert under the lock, making room for genuinely new keys.  Two domains
   racing on the same fresh subset both measured it and store the same
   value (the oracle is pure), so no double-count guard is needed. *)
let store_locked (m : memo) (s : Category.Set.t) (v : float) : unit =
  if (not (Hashtbl.mem m.m_tbl s)) && Hashtbl.length m.m_tbl >= m.m_cap
  then begin
    let victim =
      Hashtbl.fold
        (fun k (e : memo_entry) acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (k, e.stamp))
        m.m_tbl None
    in
    match victim with
    | Some (k, _) ->
      Hashtbl.remove m.m_tbl k;
      Icost_util.Telemetry.incr c_evictions
    | None -> ()
  end;
  m.m_tick <- m.m_tick + 1;
  Hashtbl.replace m.m_tbl s { value = v; stamp = m.m_tick }

let memo_point (m : memo) (s : Category.Set.t) : float =
  Mutex.lock m.m_lock;
  match Hashtbl.find_opt m.m_tbl s with
  | Some e ->
    m.m_tick <- m.m_tick + 1;
    e.stamp <- m.m_tick;
    Mutex.unlock m.m_lock;
    Icost_util.Telemetry.incr c_hits;
    e.value
  | None ->
    Mutex.unlock m.m_lock;
    Icost_util.Telemetry.incr c_misses;
    let v = m.m_under.point s in
    Mutex.lock m.m_lock;
    store_locked m s v;
    Mutex.unlock m.m_lock;
    v

(* Batched lookup: resolve every hit under one lock acquisition, then
   forward the distinct misses to the underlying oracle's batch path in a
   single call (that is where bit-sliced backends win), then store. *)
let memo_batch (m : memo) (sets : Category.Set.t array) : float array =
  let n = Array.length sets in
  let out = Array.make n 0. in
  let missing = ref [] in
  Mutex.lock m.m_lock;
  for i = n - 1 downto 0 do
    match Hashtbl.find_opt m.m_tbl sets.(i) with
    | Some e ->
      m.m_tick <- m.m_tick + 1;
      e.stamp <- m.m_tick;
      out.(i) <- e.value
    | None -> missing := i :: !missing
  done;
  Mutex.unlock m.m_lock;
  (match !missing with
  | [] -> Icost_util.Telemetry.add c_hits n
  | idxs ->
    Icost_util.Telemetry.add c_hits (n - List.length idxs);
    (* distinct missing sets, first-occurrence order *)
    let seen = Hashtbl.create 16 in
    let uniq = ref [] in
    List.iter
      (fun i ->
        let s = sets.(i) in
        if not (Hashtbl.mem seen s) then begin
          Hashtbl.add seen s ();
          uniq := s :: !uniq
        end)
      idxs;
    let uniq = Array.of_list (List.rev !uniq) in
    Icost_util.Telemetry.add c_misses (Array.length uniq);
    let vals = query_batch m.m_under uniq in
    let vtbl : (int, float) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri (fun j s -> Hashtbl.replace vtbl s vals.(j)) uniq;
    Mutex.lock m.m_lock;
    Array.iter (fun s -> store_locked m s (Hashtbl.find vtbl s)) uniq;
    Mutex.unlock m.m_lock;
    List.iter (fun i -> out.(i) <- Hashtbl.find vtbl sets.(i)) idxs);
  out

let memo_oracle (m : memo) : oracle =
  { point = memo_point m; batch = Some (memo_batch m) }

let memo_entries (m : memo) : (Category.Set.t * float) array =
  Mutex.lock m.m_lock;
  let l = Hashtbl.fold (fun k e acc -> (k, e.value) :: acc) m.m_tbl [] in
  Mutex.unlock m.m_lock;
  let a = Array.of_list l in
  Array.sort (fun (a, _) (b, _) -> compare a b) a;
  a

let memo_seed (m : memo) (entries : (Category.Set.t * float) array) : unit =
  Mutex.lock m.m_lock;
  Array.iter (fun (s, v) -> store_locked m s v) entries;
  Mutex.unlock m.m_lock

let memo_size (m : memo) : int =
  Mutex.lock m.m_lock;
  let n = Hashtbl.length m.m_tbl in
  Mutex.unlock m.m_lock;
  n

let memoize ?cap (o : oracle) : oracle = memo_oracle (memo_make ?cap o)

(** [cost oracle s] = baseline time minus time with [s] idealized. *)
let cost (oracle : oracle) (s : Category.Set.t) : float =
  query oracle Category.Set.empty -. query oracle s

(* Fetch the times of every set in [sets] through one batched query and
   expose them as a table.  This is how the power-set consumers below hit
   a bit-sliced backend once instead of 2^|U| times; the arithmetic they
   do on the fetched values is unchanged, so results stay bit-identical
   to the historical point-by-point evaluation. *)
let time_table (oracle : oracle) (sets : Category.Set.t list) :
    (int, float) Hashtbl.t =
  let arr = Array.of_list sets in
  let vals = query_batch oracle arr in
  let tbl = Hashtbl.create (2 * Array.length arr) in
  Array.iteri (fun i s -> Hashtbl.replace tbl s vals.(i)) arr;
  tbl

(** Interaction cost by the recursive definition, memoized per subset
    within one call: the naive recursion recomputes [icost(V)] once per
    superset chain (super-exponential in [|U|]); computing subsets in
    cardinality order and summing from a table is [O(3^|U|)] additions,
    which for the full 8-category set is a few thousand operations. *)
let icost (oracle : oracle) (u : Category.Set.t) : float =
  if Category.Set.is_empty u then 0.
  else begin
    let subs = Category.Set.subsets u in
    let times = time_table oracle subs in
    let t_empty = Hashtbl.find times Category.Set.empty in
    let tbl : (Category.Set.t, float) Hashtbl.t = Hashtbl.create 64 in
    let by_card =
      List.sort
        (fun a b -> compare (Category.Set.cardinal a) (Category.Set.cardinal b))
        subs
    in
    (* every proper subset of [v] has smaller cardinality, so its icost is
       already in the table when [v] is reached *)
    List.iter
      (fun v ->
        let value =
          if Category.Set.is_empty v then 0.
          else
            t_empty -. Hashtbl.find times v
            -. List.fold_left
                 (fun acc w -> acc +. Hashtbl.find tbl w)
                 0.
                 (Category.Set.proper_subsets v)
        in
        Hashtbl.replace tbl v value)
      by_card;
    Hashtbl.find tbl u
  end

(** Interaction cost by inclusion-exclusion (equal to {!icost}; used for
    cross-checking and because it is cheaper for large sets). *)
let icost_ie (oracle : oracle) (u : Category.Set.t) : float =
  let subs = Category.Set.subsets u in
  let times = time_table oracle subs in
  let t_empty = Hashtbl.find times Category.Set.empty in
  let k = Category.Set.cardinal u in
  List.fold_left
    (fun acc v ->
      let sign = if (k - Category.Set.cardinal v) land 1 = 0 then 1. else -1. in
      acc +. (sign *. (t_empty -. Hashtbl.find times v)))
    0. subs

(** Pairwise interaction cost. *)
let icost_pair oracle a b =
  if a = b then invalid_arg "Cost.icost_pair: categories must differ";
  let sa = Category.Set.singleton a and sb = Category.Set.singleton b in
  let pair = Category.Set.pair a b in
  let times = time_table oracle [ Category.Set.empty; pair; sa; sb ] in
  let t_empty = Hashtbl.find times Category.Set.empty in
  t_empty -. Hashtbl.find times pair
  -. (t_empty -. Hashtbl.find times sa)
  -. (t_empty -. Hashtbl.find times sb)

(** Interaction classification (Section 2.2). *)
type interaction = Independent | Parallel | Serial

(** [classify ?tolerance icost_value] decides the interaction type.
    [tolerance] absorbs measurement noise (default 0.5 cycles). *)
let classify ?(tolerance = 0.5) v =
  if v > tolerance then Parallel else if v < -.tolerance then Serial else Independent

let interaction_name = function
  | Independent -> "independent"
  | Parallel -> "parallel"
  | Serial -> "serial"

(** Aggregate cost of every category together (used for accounting checks:
    total time = sum of icosts over the power set of all categories plus the
    never-removable floor). *)
let cost_all oracle = cost oracle Category.Set.full

(** Sum of icosts over the power set of [u]; by construction this telescopes
    back to [cost u].  Exposed for property tests. *)
let sum_icosts_powerset oracle u =
  List.fold_left (fun acc v -> acc +. icost_ie oracle v) 0. (Category.Set.subsets u)
