(** Costs and interaction costs (Section 2 of the paper).

    {[
      cost(S)      = t_base - t(S idealized)
      icost({})    = 0
      icost(U)     = cost(U) - sum over proper subsets V of U of icost(V)
    ]}

    Parameterized over a {!oracle}; three interchangeable oracles exist in
    this repository: multiple idealized simulations
    ({!Icost_sim.Multisim.oracle}), dependence-graph re-evaluation
    ({!Icost_depgraph.Build.oracle}) and the shotgun profiler
    ({!Icost_profiler.Profile.oracle}). *)

type oracle = {
  point : Category.Set.t -> float;
      (** time (cycles) with one set idealized; [point Category.Set.empty]
          is the baseline time *)
  batch : (Category.Set.t array -> float array) option;
      (** price many idealizations in one call, index-aligned with the
          input.  Must agree bit-for-bit with mapping [point] (the
          conformance suite checks this for every built-in oracle); it
          exists because batched backends are much faster — the graph
          engine prices up to 64 subsets per edge-array pass
          ({!Icost_depgraph.Graph.eval_subsets}). *)
}
(** A cost oracle.  Power-set consumers ({!icost}, {!Breakdown},
    {!Advisor}) fetch every subset they need through {!query_batch} in one
    call, so a batched backend is hit once per analysis rather than once
    per subset. *)

val of_fn : (Category.Set.t -> float) -> oracle
(** Point-only oracle; {!query_batch} falls back to mapping the point. *)

val with_batch :
  batch:(Category.Set.t array -> float array) ->
  (Category.Set.t -> float) ->
  oracle

val query : oracle -> Category.Set.t -> float
val query_batch : oracle -> Category.Set.t array -> float array

type memo
(** A bounded, mutex-guarded memo table in front of an oracle — the
    concrete object behind {!memoize}, exposed so a resident server can
    dump it into a snapshot ({!memo_entries}) and warm-start a fresh
    process from the dump ({!memo_seed}). *)

val memo_make : ?cap:int -> oracle -> memo
val memo_oracle : memo -> oracle
(** Both the point and the batch path of the returned oracle consult the
    table; batch misses are forwarded to the underlying oracle's batch in
    one call. *)

val memo_entries : memo -> (Category.Set.t * float) array
(** Current contents, sorted by set for determinism. *)

val memo_seed : memo -> (Category.Set.t * float) array -> unit
(** Pre-populate the table (subject to the cap), as if each set had just
    been queried.  Used to warm-start from a snapshot. *)

val memo_size : memo -> int

val memoize : ?cap:int -> oracle -> oracle
(** [memo_oracle (memo_make ?cap oracle)].  Cache oracle evaluations (the
    underlying measurement — a simulation or a graph pass — is the
    expensive part, and cost queries share many subset evaluations).  The
    returned oracle is safe to share across concurrent
    {!Icost_util.Pool} jobs: the memo table is mutex-guarded, and
    measurements run outside the lock.

    The table is bounded: at most [cap] entries (clamped to >= 1, default
    512) are retained, with least-recently-used eviction counted by the
    [cost.memo_evictions] telemetry counter.  The default cap exceeds the
    2^8 = 256 distinct subsets of the full category set, so eviction never
    fires for today's oracles — the bound exists because a resident server
    holds memoized oracles for as long as a session cache keeps them, and
    an unbounded table would turn any future growth of the key space into
    a leak. *)

val cost : oracle -> Category.Set.t -> float
(** [cost oracle s] is the speedup (cycles) from idealizing [s]. *)

val icost : oracle -> Category.Set.t -> float
(** Interaction cost by the paper's recursive definition, computed with a
    per-call subset table in cardinality order ([O(3^|U|)] additions, a
    few thousand operations for the full 8-category set).  All subset
    times are fetched through one {!query_batch}. *)

val icost_ie : oracle -> Category.Set.t -> float
(** Interaction cost by inclusion-exclusion; equal to {!icost}. *)

val icost_pair : oracle -> Category.t -> Category.t -> float
(** [icost_pair oracle a b] = [cost {a,b} - cost {a} - cost {b}].
    @raise Invalid_argument if [a = b]. *)

(** How two (sets of) events relate (Section 2.2). *)
type interaction =
  | Independent  (** optimize each in isolation *)
  | Parallel  (** positive icost: gains exist only when both are optimized *)
  | Serial  (** negative icost: optimizing either one covers the other *)

val classify : ?tolerance:float -> float -> interaction
(** Classify an icost value; [tolerance] (default 0.5 cycles) absorbs
    measurement noise. *)

val interaction_name : interaction -> string

val cost_all : oracle -> float
(** Cost of idealizing every category together. *)

val sum_icosts_powerset : oracle -> Category.Set.t -> float
(** Sum of icosts over the power set of the given set; telescopes to
    [cost] of the set by construction (exposed for property tests). *)
