(** Costs and interaction costs (Section 2 of the paper).

    {[
      cost(S)      = t_base - t(S idealized)
      icost({})    = 0
      icost(U)     = cost(U) - sum over proper subsets V of U of icost(V)
    ]}

    Parameterized over a {!oracle}; three interchangeable oracles exist in
    this repository: multiple idealized simulations
    ({!Icost_sim.Multisim.oracle}), dependence-graph re-evaluation
    ({!Icost_depgraph.Build.oracle}) and the shotgun profiler
    ({!Icost_profiler.Profile.oracle}). *)

type oracle = Category.Set.t -> float
(** Maps a category set to total execution time (cycles) with that set
    idealized; [oracle Category.Set.empty] is the baseline time. *)

val memoize : ?cap:int -> oracle -> oracle
(** Cache oracle evaluations (the underlying measurement — a simulation or
    a graph pass — is the expensive part, and cost queries share many
    subset evaluations).  The returned oracle is safe to share across
    concurrent {!Icost_util.Pool} jobs: the memo table is mutex-guarded,
    and measurements run outside the lock.

    The table is bounded: at most [cap] entries (clamped to >= 1, default
    512) are retained, with least-recently-used eviction counted by the
    [cost.memo_evictions] telemetry counter.  The default cap exceeds the
    2^8 = 256 distinct subsets of the full category set, so eviction never
    fires for today's oracles — the bound exists because a resident server
    holds memoized oracles for as long as a session cache keeps them, and
    an unbounded table would turn any future growth of the key space into
    a leak. *)

val cost : oracle -> Category.Set.t -> float
(** [cost oracle s] is the speedup (cycles) from idealizing [s]. *)

val icost : oracle -> Category.Set.t -> float
(** Interaction cost by the paper's recursive definition, computed with a
    per-call subset table in cardinality order ([O(3^|U|)] additions, a
    few thousand operations for the full 8-category set). *)

val icost_ie : oracle -> Category.Set.t -> float
(** Interaction cost by inclusion-exclusion; equal to {!icost}. *)

val icost_pair : oracle -> Category.t -> Category.t -> float
(** [icost_pair oracle a b] = [cost {a,b} - cost {a} - cost {b}].
    @raise Invalid_argument if [a = b]. *)

(** How two (sets of) events relate (Section 2.2). *)
type interaction =
  | Independent  (** optimize each in isolation *)
  | Parallel  (** positive icost: gains exist only when both are optimized *)
  | Serial  (** negative icost: optimizing either one covers the other *)

val classify : ?tolerance:float -> float -> interaction
(** Classify an icost value; [tolerance] (default 0.5 cycles) absorbs
    measurement noise. *)

val interaction_name : interaction -> string

val cost_all : oracle -> float
(** Cost of idealizing every category together. *)

val sum_icosts_powerset : oracle -> Category.Set.t -> float
(** Sum of icosts over the power set of the given set; telescopes to
    [cost] of the set by construction (exposed for property tests). *)
