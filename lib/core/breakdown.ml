(** Parallelism-aware performance breakdowns (Section 2.3).

    Traditional CPI breakdowns assign each cycle to exactly one cause, which
    is impossible in an out-of-order processor.  An icost breakdown instead
    has one row per base category plus one row per *interaction* among the
    displayed categories; positive rows can exceed 100% in aggregate, offset
    by negative (serial) interaction rows, and the whole table accounts for
    all execution time.

    The paper's Table 4 displays, for a chosen focus category (the critical
    loop under study), the eight base costs, the pairwise interactions of
    the focus with every other category, and an "Other" row summing all
    interaction costs not displayed.  {!focus} reproduces exactly that
    layout; {!pairwise} gives the full pairwise matrix. *)

type row_kind =
  | Base of Category.t
  | Pair of Category.t * Category.t  (** interaction row, focus first *)
  | Other  (** all interaction costs not displayed *)

type row = { kind : row_kind; percent : float; cycles : float }

type t = {
  baseline_cycles : float;
  rows : row list;
}

let row_label r =
  match r.kind with
  | Base c -> Category.name c
  | Pair (a, b) -> Category.name a ^ "+" ^ Category.name b
  | Other -> "Other"

(** [focus ~oracle ~focus_cat] builds a Table 4-style breakdown: base rows
    ordered with the focus first, focus+x interaction rows, and Other
    completing the account to exactly 100%. *)
let focus ~(oracle : Cost.oracle) ~(focus_cat : Category.t) : t =
  let oracle = Cost.memoize oracle in
  let others = List.filter (fun c -> c <> focus_cat) Category.all in
  (* fetch every subset the rows below need in one batched query, so a
     bit-sliced backend prices them in a single sweep; the row arithmetic
     then runs entirely against the memo *)
  ignore
    (Cost.query_batch oracle
       (Array.of_list
          (Category.Set.empty
           :: List.map Category.Set.singleton Category.all
          @ List.map (fun c -> Category.Set.pair focus_cat c) others)));
  let baseline = Cost.query oracle Category.Set.empty in
  let pct cycles = if baseline = 0. then 0. else 100. *. cycles /. baseline in
  let base_rows =
    List.map
      (fun c ->
        let cyc = Cost.cost oracle (Category.Set.singleton c) in
        { kind = Base c; percent = pct cyc; cycles = cyc })
      (focus_cat :: others)
  in
  let pair_rows =
    List.map
      (fun c ->
        let cyc = Cost.icost_pair oracle focus_cat c in
        { kind = Pair (focus_cat, c); percent = pct cyc; cycles = cyc })
      others
  in
  let shown = List.fold_left (fun acc r -> acc +. r.percent) 0. (base_rows @ pair_rows) in
  let other = { kind = Other; percent = 100. -. shown; cycles = baseline *. (100. -. shown) /. 100. } in
  { baseline_cycles = baseline; rows = base_rows @ pair_rows @ [ other ] }

(** Total of all rows; 100 by construction of the Other row. *)
let total t = List.fold_left (fun acc r -> acc +. r.percent) 0. t.rows

let find_row t kind =
  List.find_opt (fun r ->
      match (r.kind, kind) with
      | Base a, Base b -> a = b
      | Pair (a, b), Pair (c, d) -> (a = c && b = d) || (a = d && b = c)
      | Other, Other -> true
      | _ -> false)
    t.rows

let percent_of t kind = Option.map (fun r -> r.percent) (find_row t kind)

(** Full pairwise interaction matrix over all categories: entries (a, b, icost%)
    for a < b in category order. *)
let pairwise ~(oracle : Cost.oracle) =
  let oracle = Cost.memoize oracle in
  let rec pairs = function
    | [] -> []
    | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
  in
  ignore
    (Cost.query_batch oracle
       (Array.of_list
          (Category.Set.empty
           :: List.map Category.Set.singleton Category.all
          @ List.map (fun (a, b) -> Category.Set.pair a b) (pairs Category.all))));
  let baseline = Cost.query oracle Category.Set.empty in
  let pct cycles = if baseline = 0. then 0. else 100. *. cycles /. baseline in
  List.map
    (fun (a, b) -> (a, b, pct (Cost.icost_pair oracle a b)))
    (pairs Category.all)

(** Higher-order interactions: icost of every subset of [cats] with
    cardinality between 2 and [max_order], as percent of baseline. *)
let higher_order ~(oracle : Cost.oracle) ~max_order cats =
  let oracle = Cost.memoize oracle in
  let full = Category.Set.of_list cats in
  (* [icost_ie] of an order-k subset touches its whole power set; priming
     with P(full) covers every query below in one batched sweep *)
  ignore (Cost.query_batch oracle (Array.of_list (Category.Set.subsets full)));
  let baseline = Cost.query oracle Category.Set.empty in
  let pct cycles = if baseline = 0. then 0. else 100. *. cycles /. baseline in
  Category.Set.subsets full
  |> List.filter (fun s ->
         let k = Category.Set.cardinal s in
         k >= 2 && k <= max_order)
  |> List.map (fun s -> (s, pct (Cost.icost_ie oracle s)))
  |> List.sort (fun (a, _) (b, _) ->
         compare (Category.Set.cardinal a, a) (Category.Set.cardinal b, b))
