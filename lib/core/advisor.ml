(** Optimization advisor: turn a cost oracle into design recommendations.

    The paper's introduction describes the intended use of (interaction)
    costs: "help the designer resize just the right queue, predict the most
    critical dependence, or, conversely, economically reduce the sizes of
    non-bottleneck resources, saving area and energy.  In short, we could
    build more balanced machines."  This module mechanizes that reading:

    - categories with large individual cost are {e bottlenecks};
    - categories with near-zero cost AND near-zero interaction with every
      other category are {e de-optimization candidates} (shrink the
      resource; performance is insensitive to it);
    - for each bottleneck, the strongest serial partner is the {e indirect
      lever} (improving the partner also hides the bottleneck's latency),
      and strong parallel partners must be attacked {e together}. *)

type recommendation =
  | Attack of { cat : Category.t; cost_pct : float }
      (** a primary bottleneck worth direct optimization *)
  | Attack_with of {
      cat : Category.t;
      partner : Category.t;
      icost_pct : float;
    }  (** parallel interaction: only a joint attack realizes the gain *)
  | Indirect_lever of {
      cat : Category.t;
      partner : Category.t;
      icost_pct : float;
    }  (** serial interaction: improving [partner] also hides [cat] *)
  | Deoptimize of { cat : Category.t; cost_pct : float }
      (** near-zero cost and interactions: candidate for shrinking *)
  | Resize of {
      resource : string;
      from_units : int;
      to_units : int;
      cycles_saved : float;
      cycles_per_unit : float;
    }  (** quantified resize from a sensitivity sweep (see the .mli) *)

type report = {
  baseline : float;
  costs : (Category.t * float) list;  (** percent of baseline, descending *)
  interactions : (Category.t * Category.t * float) list;  (** percent *)
  recommendations : recommendation list;
}

(** Thresholds, as percent of execution time. *)
type thresholds = {
  bottleneck : float;  (** individual cost above this is a bottleneck *)
  interaction : float;  (** |icost| above this is significant *)
  negligible : float;  (** cost and interactions below this allow shrinking *)
}

let default_thresholds = { bottleneck = 10.; interaction = 2.; negligible = 1. }

let analyze ?(thresholds = default_thresholds) (oracle : Cost.oracle) : report =
  let oracle = Cost.memoize oracle in
  let rec all_pairs = function
    | [] -> []
    | a :: rest -> List.map (fun b -> Category.Set.pair a b) rest @ all_pairs rest
  in
  (* one batched fetch of everything the report reads: baseline, the 8
     singleton costs and all 28 pairwise interactions *)
  ignore
    (Cost.query_batch oracle
       (Array.of_list
          (Category.Set.empty
           :: List.map Category.Set.singleton Category.all
          @ all_pairs Category.all)));
  let baseline = Cost.query oracle Category.Set.empty in
  let pct v = if baseline = 0. then 0. else 100. *. v /. baseline in
  let costs =
    List.map
      (fun c -> (c, pct (Cost.cost oracle (Category.Set.singleton c))))
      Category.all
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let interactions =
    let rec pairs = function
      | [] -> []
      | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
    in
    List.map (fun (a, b) -> (a, b, pct (Cost.icost_pair oracle a b))) (pairs Category.all)
  in
  let icost_with c =
    List.filter_map
      (fun (a, b, v) ->
        if a = c then Some (b, v) else if b = c then Some (a, v) else None)
      interactions
  in
  let recommendations =
    List.concat_map
      (fun (c, cost_pct) ->
        if cost_pct >= thresholds.bottleneck then begin
          let partners = icost_with c in
          let strongest =
            List.fold_left
              (fun acc (p, v) ->
                match acc with
                | Some (_, bv) when Float.abs bv >= Float.abs v -> acc
                | _ -> Some (p, v))
              None partners
          in
          Attack { cat = c; cost_pct }
          ::
          (match strongest with
           | Some (p, v) when v <= -.thresholds.interaction ->
             [ Indirect_lever { cat = c; partner = p; icost_pct = v } ]
           | Some (p, v) when v >= thresholds.interaction ->
             [ Attack_with { cat = c; partner = p; icost_pct = v } ]
           | _ -> [])
        end
        else if
          cost_pct <= thresholds.negligible
          && List.for_all
               (fun (_, v) -> Float.abs v <= thresholds.negligible)
               (icost_with c)
        then [ Deoptimize { cat = c; cost_pct } ]
        else [])
      costs
  in
  { baseline; costs; interactions; recommendations }

let recommendation_to_string = function
  | Attack { cat; cost_pct } ->
    Printf.sprintf "ATTACK %s: %.1f%% of execution time" (Category.name cat) cost_pct
  | Attack_with { cat; partner; icost_pct } ->
    Printf.sprintf
      "ATTACK %s TOGETHER WITH %s: parallel interaction (%+.1f%%), optimizing \
       one alone forfeits the shared cycles"
      (Category.name cat) (Category.name partner) icost_pct
  | Indirect_lever { cat; partner; icost_pct } ->
    Printf.sprintf
      "INDIRECT LEVER for %s: improve %s (serial interaction %+.1f%%); it also \
       hides %s latency"
      (Category.name cat) (Category.name partner) icost_pct (Category.name cat)
  | Deoptimize { cat; cost_pct } ->
    Printf.sprintf
      "DE-OPTIMIZE %s: cost %.1f%% and no significant interactions; the \
       resource can shrink to save area/energy"
      (Category.name cat) cost_pct
  | Resize { resource; from_units; to_units; cycles_saved; cycles_per_unit } ->
    Printf.sprintf
      "RESIZE %s %d -> %d: saves %.0f cycles (%.2f cycles per unit of %s); \
       marginal benefit saturates beyond the knee"
      resource from_units to_units cycles_saved cycles_per_unit resource

let report_to_string (r : report) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "baseline %.0f cycles; individual costs (%% of time):\n" r.baseline);
  List.iter
    (fun (c, v) -> Buffer.add_string buf (Printf.sprintf "  %-6s %6.1f%%\n" (Category.name c) v))
    r.costs;
  Buffer.add_string buf "recommendations:\n";
  if r.recommendations = [] then Buffer.add_string buf "  (machine is balanced)\n"
  else
    List.iter
      (fun rec_ -> Buffer.add_string buf ("  - " ^ recommendation_to_string rec_ ^ "\n"))
      r.recommendations;
  Buffer.contents buf
