(* icost — command-line driver for the interaction-cost library.

   Subcommands:
     list         available workloads
     breakdown    parallelism-aware breakdown for one workload
     icost        costs/icosts of chosen category sets
     graph        dump a dependence graph (text or DOT)
     experiment   regenerate a paper table/figure (or "all")

   Every subcommand accepts --trace FILE (Chrome trace-event JSON),
   --metrics FILE (flat counters/gauges JSON) and --span-tree (human
   span summary); any of them switches the telemetry sink on for the
   run, and both JSON artifacts embed the run manifest. *)

module Workload = Icost_workloads.Workload
module Config = Icost_uarch.Config
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Breakdown = Icost_core.Breakdown
module Runner = Icost_experiments.Runner
module Drive = Icost_experiments.Drive
module Graph = Icost_depgraph.Graph
module Telemetry = Icost_util.Telemetry
module Texport = Icost_report.Telemetry_export
open Cmdliner

let version = "1.0.0"

(* --- telemetry options (shared by every subcommand) --- *)

type telem = { trace : string option; metrics : string option; tree : bool }

let telem_term =
  let trace_arg =
    let doc =
      "Write a Chrome trace-event JSON of the run to $(docv) (open in \
       chrome://tracing or Perfetto).  Enables the telemetry sink."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc =
      "Write flat metrics JSON (counters, gauges, run manifest) to $(docv).  \
       Enables the telemetry sink."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let tree_arg =
    let doc = "Print the aggregated span tree after the command." in
    Arg.(value & flag & info [ "span-tree" ] ~doc)
  in
  Term.(
    const (fun trace metrics tree -> { trace; metrics; tree })
    $ trace_arg $ metrics_arg $ tree_arg)

(** Run [f] with the telemetry sink enabled when any telemetry output was
    requested; write the requested artifacts afterwards (also on
    exceptions, so a failing run still leaves its trace behind). *)
let with_telemetry (t : telem) ~cfg ~benches (f : unit -> 'a) : 'a =
  let active = t.trace <> None || t.metrics <> None || t.tree in
  if active then Telemetry.enable ();
  let finish () =
    if active then begin
      let m =
        Texport.manifest ~version ~config_digest:(Texport.digest cfg)
          ~seed:Icost_profiler.Sampler.default_opts.seed ~workloads:benches ()
      in
      Option.iter
        (fun file ->
          Texport.write_trace ~file m;
          Printf.eprintf "wrote trace %s\n" file)
        t.trace;
      Option.iter
        (fun file ->
          Texport.write_metrics ~file m;
          Printf.eprintf "wrote metrics %s\n" file)
        t.metrics;
      if t.tree then prerr_string (Texport.span_tree ())
    end
  in
  Fun.protect ~finally:finish f

(* --- common options --- *)

let bench_arg =
  let doc = "Workload to analyze (see `icost list`)." in
  Arg.(value & opt string "gcc" & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let benches_arg =
  let doc = "Comma-separated workloads (default: the full suite)." in
  Arg.(value & opt (some string) None & info [ "benches" ] ~docv:"NAMES" ~doc)

let measure_arg =
  let doc = "Instructions to measure after warm-up." in
  Arg.(value & opt int Runner.default_settings.measure & info [ "n"; "measure" ] ~doc)

let warmup_arg =
  let doc = "Warm-up instructions (caches and predictors train, not timed)." in
  Arg.(value & opt int Runner.default_settings.warmup & info [ "warmup" ] ~doc)

let variant_arg =
  let doc = "Machine variant: base, dl1 (4-cycle L1), wakeup (2-cycle \
             issue-wakeup) or bmisp (15-cycle mispredict loop)." in
  Arg.(value & opt (enum [ ("base", `Base); ("dl1", `Dl1); ("wakeup", `Wakeup); ("bmisp", `Bmisp) ]) `Base
       & info [ "variant" ] ~doc)

let oracle_arg =
  let doc = "Cost oracle: graph, multisim or profiler." in
  Arg.(value
       & opt (enum [ ("graph", Runner.Fullgraph); ("multisim", Runner.Multisim);
                     ("profiler", Runner.Profiler) ]) Runner.Fullgraph
       & info [ "oracle" ] ~doc)

let config_of_variant = function
  | `Base -> Config.default
  | `Dl1 -> Config.loop_dl1
  | `Wakeup -> Config.loop_wakeup
  | `Bmisp -> Config.loop_bmisp

let settings ~warmup ~measure ~benches =
  let benches =
    match benches with
    | None -> Workload.names
    | Some s -> String.split_on_char ',' s |> List.map String.trim
  in
  { Runner.warmup; measure; benches }

(* --- list --- *)

let list_cmd =
  let run telem =
    with_telemetry telem ~cfg:Config.default ~benches:[] (fun () ->
        List.iter
          (fun (w : Workload.t) ->
            Printf.printf "%-8s  %s\n" w.name w.description)
          Workload.all)
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads") Term.(const run $ telem_term)

(* --- breakdown --- *)

let breakdown_cmd =
  let focus_arg =
    let doc = "Focus category for the interaction rows." in
    Arg.(value & opt string "dl1" & info [ "focus" ] ~doc)
  in
  let run bench variant oracle focus warmup measure telem =
    let cfg = config_of_variant variant in
    with_telemetry telem ~cfg ~benches:[ bench ] @@ fun () ->
    let focus_cat =
      match Category.of_name focus with
      | Some c -> c
      | None -> failwith (Printf.sprintf "unknown category %S" focus)
    in
    let s = settings ~warmup ~measure ~benches:(Some bench) in
    let p = Runner.prepare s (Workload.find_exn bench) in
    let o = Runner.oracle_of_kind oracle cfg p in
    let bd = Breakdown.focus ~oracle:o ~focus_cat in
    Printf.printf "%s on %s machine (%s oracle), %.0f cycles baseline:\n" bench
      (match variant with `Base -> "base" | `Dl1 -> "4-cycle-dl1"
       | `Wakeup -> "2-cycle-wakeup" | `Bmisp -> "15-cycle-bmisp")
      (Runner.oracle_kind_name oracle) bd.baseline_cycles;
    List.iter
      (fun (row : Breakdown.row) ->
        Printf.printf "  %-12s %7.1f%%\n" (Breakdown.row_label row) row.percent)
      bd.rows;
    Printf.printf "  %-12s %7.1f%%\n" "Total" (Breakdown.total bd)
  in
  Cmd.v
    (Cmd.info "breakdown" ~doc:"Parallelism-aware breakdown for one workload")
    Term.(const run $ bench_arg $ variant_arg $ oracle_arg $ focus_arg $ warmup_arg
          $ measure_arg $ telem_term)

(* --- icost --- *)

let icost_cmd =
  let sets_arg =
    let doc = "Category set, e.g. 'dl1,win'. Repeatable; costs and the \
               interaction cost of each set are reported." in
    Arg.(value & opt_all string [ "dl1,win" ] & info [ "s"; "set" ] ~docv:"CATS" ~doc)
  in
  let run bench variant oracle sets warmup measure telem =
    let cfg = config_of_variant variant in
    with_telemetry telem ~cfg ~benches:[ bench ] @@ fun () ->
    let s = settings ~warmup ~measure ~benches:(Some bench) in
    let p = Runner.prepare s (Workload.find_exn bench) in
    let o = Cost.memoize (Runner.oracle_of_kind oracle cfg p) in
    let base = o Category.Set.empty in
    Printf.printf "%s: baseline %.0f cycles\n" bench base;
    List.iter
      (fun spec ->
        let cats =
          String.split_on_char ',' spec
          |> List.map (fun n ->
                 match Category.of_name (String.trim n) with
                 | Some c -> c
                 | None -> failwith (Printf.sprintf "unknown category %S" n))
        in
        let set = Category.Set.of_list cats in
        let cost = Cost.cost o set in
        let ic = Cost.icost_ie o set in
        Printf.printf "  %-24s cost %8.0f cycles (%5.1f%%)  icost %+8.0f (%s)\n"
          (Category.Set.name set) cost
          (100. *. cost /. base)
          ic
          (Cost.interaction_name (Cost.classify ic)))
      sets
  in
  Cmd.v
    (Cmd.info "icost" ~doc:"Costs and interaction costs of category sets")
    Term.(const run $ bench_arg $ variant_arg $ oracle_arg $ sets_arg $ warmup_arg
          $ measure_arg $ telem_term)

(* --- graph --- *)

let graph_cmd =
  let dot_arg =
    let doc = "Write Graphviz DOT to this file." in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)
  in
  let instrs_arg =
    let doc = "Number of instructions to include." in
    Arg.(value & opt int 24 & info [ "instrs" ] ~doc)
  in
  let run bench variant dot instrs warmup telem =
    let cfg = config_of_variant variant in
    with_telemetry telem ~cfg ~benches:[ bench ] @@ fun () ->
    let s = settings ~warmup ~measure:instrs ~benches:(Some bench) in
    let p = Runner.prepare s (Workload.find_exn bench) in
    let g = Runner.graph_of cfg p in
    Printf.printf "%s: %d instructions, %d nodes, %d edges, CP %d cycles\n\n" bench
      instrs (Graph.num_nodes g) (Graph.num_edges g) (Graph.critical_length g);
    Format.printf "%a@." (fun ppf () -> Graph.pp_small ppf g) ();
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Graph.to_dot g);
        close_out oc;
        Printf.printf "wrote %s\n" path)
      dot
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Dump a dependence-graph instance")
    Term.(const run $ bench_arg $ variant_arg $ dot_arg $ instrs_arg $ warmup_arg
          $ telem_term)

(* --- advise --- *)

let advise_cmd =
  let run bench variant oracle warmup measure telem =
    let cfg = config_of_variant variant in
    with_telemetry telem ~cfg ~benches:[ bench ] @@ fun () ->
    let s = settings ~warmup ~measure ~benches:(Some bench) in
    let p = Runner.prepare s (Workload.find_exn bench) in
    let o = Runner.oracle_of_kind oracle cfg p in
    let r = Icost_core.Advisor.analyze o in
    Printf.printf "%s:\n%s" bench (Icost_core.Advisor.report_to_string r)
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Bottleneck / de-optimization recommendations for one workload")
    Term.(const run $ bench_arg $ variant_arg $ oracle_arg $ warmup_arg $ measure_arg
          $ telem_term)

(* --- experiment --- *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id: fig1, table4a, table4b, table4c, fig3, table7, \
               profstats, ablation, prefetch, advisor, or all." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let run id benches warmup measure telem =
    let s = settings ~warmup ~measure ~benches in
    let failed =
      with_telemetry telem ~cfg:Config.default ~benches:s.Runner.benches
      @@ fun () ->
      let reports =
      match id with
      | "all" -> Drive.all_reports ~settings:s ()
      | id ->
        let prepared = Runner.prepare_all s in
        let t7 =
          match benches with
          | Some _ -> prepared
          | None ->
            List.filter
              (fun (p : Runner.prepared) ->
                List.mem p.name Icost_experiments.Exp_table7.default_benches)
              prepared
        in
        (match id with
         | "fig1" -> [ Drive.fig1 prepared ]
         | "table4a" -> [ Drive.table4a prepared ]
         | "table4b" -> [ Drive.table4b prepared ]
         | "table4c" -> [ Drive.table4c prepared ]
         | "fig3" -> [ Drive.fig3 prepared ]
         | "table7" -> [ Drive.table7 t7 ]
         | "profstats" -> [ Drive.profstats t7 ]
         | "ablation" -> [ Drive.ablation t7 ]
         | "prefetch" -> [ Drive.prefetch ~settings:s () ]
         | "conclusion" -> [ Drive.conclusion ~settings:s () ]
         | "advisor" -> [ Drive.advisor prepared ]
         | other -> failwith (Printf.sprintf "unknown experiment %S" other))
      in
      List.iter Drive.print_report reports;
      Drive.failed_checks reports
    in
    (* a failing shape check is a failing run: give CI an exit status to
       gate on instead of PASS/FAIL prose buried in the report body *)
    if failed <> [] then begin
      Printf.eprintf "%d shape check(s) failed:\n" (List.length failed);
      List.iter (fun (id, d) -> Printf.eprintf "  [%s] %s\n" id d) failed;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a paper table or figure")
    Term.(const run $ id_arg $ benches_arg $ warmup_arg $ measure_arg $ telem_term)

let () =
  let info =
    Cmd.info "icost" ~version
      ~doc:"Interaction-cost bottleneck analysis (Fields et al., MICRO-36 2003)"
  in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; breakdown_cmd; icost_cmd; graph_cmd; advise_cmd; experiment_cmd ]))
