(* icost — command-line driver for the interaction-cost library.

   Subcommands:
     list         available workloads
     breakdown    parallelism-aware breakdown for one workload
     icost        costs/icosts of chosen category sets
     graph        dump a dependence graph (text or DOT)
     sweep        d(cycles)/d(param) sensitivity curves, knees, resize ROI
     stream       bounded-memory streaming analysis of arbitrarily long runs
     experiment   regenerate a paper table/figure (or "all")
     check        cross-engine conformance laws on kernels + fuzzed programs
     serve        resident analysis daemon on a Unix socket (icost.rpc.v1)
     query        one request against a running daemon

   Every subcommand accepts --trace FILE (Chrome trace-event JSON),
   --metrics FILE (flat counters/gauges JSON) and --span-tree (human
   span summary); any of them switches the telemetry sink on for the
   run, and both JSON artifacts embed the run manifest.  --jobs N
   overrides the ICOST_JOBS environment variable, which overrides the
   hardware default (see README, "Parallelism"). *)

module Workload = Icost_workloads.Workload
module Config = Icost_uarch.Config
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Breakdown = Icost_core.Breakdown
module Runner = Icost_experiments.Runner
module Drive = Icost_experiments.Drive
module Graph = Icost_depgraph.Graph
module Telemetry = Icost_util.Telemetry
module Texport = Icost_report.Telemetry_export
module Pool = Icost_util.Pool
module Protocol = Icost_service.Protocol
module Server = Icost_service.Server
module Router = Icost_service.Router
module Endpoint = Icost_service.Endpoint
module Snapshot = Icost_service.Snapshot
module Client = Icost_service.Client
module Harness = Icost_check.Harness
module Laws = Icost_check.Laws
module Sparam = Icost_sensitivity.Param
module Sweep = Icost_sensitivity.Sweep
module Stream = Icost_stream.Core
module Stream_source = Icost_stream.Source
module Json = Icost_service.Json
open Cmdliner

let version = "1.0.0"

(* --- options shared by every subcommand --- *)

type common = {
  trace : string option;
  metrics : string option;
  tree : bool;
  jobs : int option;
}

let common_term =
  let trace_arg =
    let doc =
      "Write a Chrome trace-event JSON of the run to $(docv) (open in \
       chrome://tracing or Perfetto).  Enables the telemetry sink."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc =
      "Write flat metrics JSON (counters, gauges, run manifest) to $(docv).  \
       Enables the telemetry sink."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let tree_arg =
    let doc = "Print the aggregated span tree after the command." in
    Arg.(value & flag & info [ "span-tree" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Number of concurrent analysis jobs.  Overrides the ICOST_JOBS \
       environment variable; without either, the hardware's recommended \
       domain count is used."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  Term.(
    const (fun trace metrics tree jobs -> { trace; metrics; tree; jobs })
    $ trace_arg $ metrics_arg $ tree_arg $ jobs_arg)

(** Run [f] with the telemetry sink enabled when any telemetry output was
    requested; write the requested artifacts afterwards (also on
    exceptions, so a failing run still leaves its trace behind).
    [service_stats] (the [serve] subcommand) adds server uptime/request
    counts to the exported manifest. *)
let with_telemetry ?(service_stats = fun () -> None) (t : common) ~cfg ~benches
    (f : unit -> 'a) : 'a =
  Option.iter Pool.set_jobs t.jobs;
  let active = t.trace <> None || t.metrics <> None || t.tree in
  if active then Telemetry.enable ();
  let finish () =
    if active then begin
      let m =
        Texport.manifest ~version ~config_digest:(Texport.digest cfg)
          ~seed:Icost_profiler.Sampler.default_opts.seed
          ?service:(service_stats ()) ~workloads:benches ()
      in
      Option.iter
        (fun file ->
          Texport.write_trace ~file m;
          Printf.eprintf "wrote trace %s\n" file)
        t.trace;
      Option.iter
        (fun file ->
          Texport.write_metrics ~file m;
          Printf.eprintf "wrote metrics %s\n" file)
        t.metrics;
      if t.tree then prerr_string (Texport.span_tree ())
    end
  in
  Fun.protect ~finally:finish f

(* --- common options --- *)

let bench_arg =
  let doc = "Workload to analyze (see `icost list`)." in
  Arg.(value & opt string "gcc" & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let benches_arg =
  let doc = "Comma-separated workloads (default: the full suite)." in
  Arg.(value & opt (some string) None & info [ "benches" ] ~docv:"NAMES" ~doc)

let measure_arg =
  let doc = "Instructions to measure after warm-up." in
  Arg.(value & opt int Runner.default_settings.measure & info [ "n"; "measure" ] ~doc)

let warmup_arg =
  let doc = "Warm-up instructions (caches and predictors train, not timed)." in
  Arg.(value & opt int Runner.default_settings.warmup & info [ "warmup" ] ~doc)

let variant_arg =
  let doc = "Machine variant: base, dl1 (4-cycle L1), wakeup (2-cycle \
             issue-wakeup) or bmisp (15-cycle mispredict loop)." in
  Arg.(value & opt (enum [ ("base", `Base); ("dl1", `Dl1); ("wakeup", `Wakeup); ("bmisp", `Bmisp) ]) `Base
       & info [ "variant" ] ~doc)

let oracle_arg =
  let doc = "Cost oracle: graph, multisim, profiler or stream." in
  Arg.(value
       & opt (enum [ ("graph", Runner.Fullgraph); ("multisim", Runner.Multisim);
                     ("profiler", Runner.Profiler); ("stream", Runner.Streamed) ])
           Runner.Fullgraph
       & info [ "oracle" ] ~doc)

let seed_arg =
  let doc =
    "Sampling seed for the profiler oracle (analysis is otherwise \
     deterministic).  The same seed always yields bit-identical results."
  in
  Arg.(value
       & opt int Icost_profiler.Sampler.default_opts.seed
       & info [ "seed" ] ~doc)

let cache_dir_arg =
  let doc =
    "Persistent snapshot store (icost.graphcache.v1): reuse compiled \
     graphs and memoized subset costs across runs and 'icost serve' \
     restarts.  The directory is created on first use."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let config_of_variant = function
  | `Base -> Config.default
  | `Dl1 -> Config.loop_dl1
  | `Wakeup -> Config.loop_wakeup
  | `Bmisp -> Config.loop_bmisp

let variant_name = function
  | `Base -> "base"
  | `Dl1 -> "dl1"
  | `Wakeup -> "wakeup"
  | `Bmisp -> "bmisp"

let settings ~warmup ~measure ~benches =
  let benches =
    match benches with
    | None -> Workload.names
    | Some s -> String.split_on_char ',' s |> List.map String.trim
  in
  { Runner.warmup; measure; benches }

(* With --cache-dir, a one-shot analysis addresses the same snapshot
   store a daemon would for the equivalent request: the first run pays
   the full prepare/baseline/build pipeline and persists it, later runs
   (or a restarted 'icost serve') warm-start from disk.  Without it,
   [establish] just builds fresh. *)
let establish_session ~cache_dir ~bench ~variant ~oracle ~warmup ~measure ~seed =
  let cfg = config_of_variant variant in
  let tg =
    {
      Protocol.workload = bench;
      variant = variant_name variant;
      engine = Runner.oracle_kind_name oracle;
      warmup;
      measure;
      seed;
    }
  in
  let key = Server.session_key tg cfg oracle in
  let est =
    Snapshot.establish ?cache_dir ~key ~kind:oracle ~cfg ~seed
      ~prepare:(fun () ->
        Runner.prepare
          (settings ~warmup ~measure ~benches:(Some bench))
          (Workload.find_exn bench))
      ~baseline:(fun p -> Runner.baseline_run cfg p)
      ()
  in
  let persist () =
    Option.iter (fun dir -> Snapshot.persist ~dir ~key est) cache_dir
  in
  (est, persist)

(* --- list --- *)

let list_cmd =
  let run telem =
    with_telemetry telem ~cfg:Config.default ~benches:[] (fun () ->
        List.iter
          (fun (w : Workload.t) ->
            Printf.printf "%-8s  %s\n" w.name w.description)
          Workload.all)
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads") Term.(const run $ common_term)

(* --- breakdown --- *)

let breakdown_cmd =
  let focus_arg =
    let doc = "Focus category for the interaction rows." in
    Arg.(value & opt string "dl1" & info [ "focus" ] ~doc)
  in
  let run bench variant oracle focus warmup measure seed cache_dir telem =
    let cfg = config_of_variant variant in
    with_telemetry telem ~cfg ~benches:[ bench ] @@ fun () ->
    let focus_cat =
      match Category.of_name focus with
      | Some c -> c
      | None -> failwith (Printf.sprintf "unknown category %S" focus)
    in
    let est, persist =
      establish_session ~cache_dir ~bench ~variant ~oracle ~warmup ~measure
        ~seed
    in
    let bd = Breakdown.focus ~oracle:est.Snapshot.est_oracle ~focus_cat in
    persist ();
    Printf.printf "%s on %s machine (%s oracle), %.0f cycles baseline:\n" bench
      (match variant with `Base -> "base" | `Dl1 -> "4-cycle-dl1"
       | `Wakeup -> "2-cycle-wakeup" | `Bmisp -> "15-cycle-bmisp")
      (Runner.oracle_kind_name oracle) bd.baseline_cycles;
    List.iter
      (fun (row : Breakdown.row) ->
        Printf.printf "  %-12s %7.1f%%\n" (Breakdown.row_label row) row.percent)
      bd.rows;
    Printf.printf "  %-12s %7.1f%%\n" "Total" (Breakdown.total bd)
  in
  Cmd.v
    (Cmd.info "breakdown" ~doc:"Parallelism-aware breakdown for one workload")
    Term.(const run $ bench_arg $ variant_arg $ oracle_arg $ focus_arg $ warmup_arg
          $ measure_arg $ seed_arg $ cache_dir_arg $ common_term)

(* --- icost --- *)

let icost_cmd =
  let sets_arg =
    let doc = "Category set, e.g. 'dl1,win'. Repeatable; costs and the \
               interaction cost of each set are reported." in
    Arg.(value & opt_all string [ "dl1,win" ] & info [ "s"; "set" ] ~docv:"CATS" ~doc)
  in
  let run bench variant oracle sets warmup measure seed cache_dir telem =
    let cfg = config_of_variant variant in
    with_telemetry telem ~cfg ~benches:[ bench ] @@ fun () ->
    let est, persist =
      establish_session ~cache_dir ~bench ~variant ~oracle ~warmup ~measure
        ~seed
    in
    let o = est.Snapshot.est_oracle in
    let base = Cost.query o Category.Set.empty in
    Printf.printf "%s: baseline %.0f cycles\n" bench base;
    List.iter
      (fun spec ->
        let cats =
          String.split_on_char ',' spec
          |> List.map (fun n ->
                 match Category.of_name (String.trim n) with
                 | Some c -> c
                 | None -> failwith (Printf.sprintf "unknown category %S" n))
        in
        let set = Category.Set.of_list cats in
        let cost = Cost.cost o set in
        let ic = Cost.icost_ie o set in
        Printf.printf "  %-24s cost %8.0f cycles (%5.1f%%)  icost %+8.0f (%s)\n"
          (Category.Set.name set) cost
          (100. *. cost /. base)
          ic
          (Cost.interaction_name (Cost.classify ic)))
      sets;
    persist ()
  in
  Cmd.v
    (Cmd.info "icost" ~doc:"Costs and interaction costs of category sets")
    Term.(const run $ bench_arg $ variant_arg $ oracle_arg $ sets_arg $ warmup_arg
          $ measure_arg $ seed_arg $ cache_dir_arg $ common_term)

(* --- graph --- *)

let graph_cmd =
  let dot_arg =
    let doc = "Write Graphviz DOT to this file." in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)
  in
  let instrs_arg =
    let doc = "Number of instructions to include." in
    Arg.(value & opt int 24 & info [ "instrs" ] ~doc)
  in
  let run bench variant dot instrs warmup telem =
    let cfg = config_of_variant variant in
    with_telemetry telem ~cfg ~benches:[ bench ] @@ fun () ->
    let s = settings ~warmup ~measure:instrs ~benches:(Some bench) in
    let p = Runner.prepare s (Workload.find_exn bench) in
    let g = Runner.graph_of cfg p in
    Printf.printf "%s: %d instructions, %d nodes, %d edges, CP %d cycles\n\n" bench
      instrs (Graph.num_nodes g) (Graph.num_edges g) (Graph.critical_length g);
    Format.printf "%a@." (fun ppf () -> Graph.pp_small ppf g) ();
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Graph.to_dot g);
        close_out oc;
        Printf.printf "wrote %s\n" path)
      dot
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Dump a dependence-graph instance")
    Term.(const run $ bench_arg $ variant_arg $ dot_arg $ instrs_arg $ warmup_arg
          $ common_term)

(* --- advise --- *)

let advise_cmd =
  let run bench variant oracle warmup measure telem =
    let cfg = config_of_variant variant in
    with_telemetry telem ~cfg ~benches:[ bench ] @@ fun () ->
    let s = settings ~warmup ~measure ~benches:(Some bench) in
    let p = Runner.prepare s (Workload.find_exn bench) in
    let o = Runner.oracle_of_kind oracle cfg p in
    let r = Icost_core.Advisor.analyze o in
    Printf.printf "%s:\n%s" bench (Icost_core.Advisor.report_to_string r)
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:"Bottleneck / de-optimization recommendations for one workload")
    Term.(const run $ bench_arg $ variant_arg $ oracle_arg $ warmup_arg $ measure_arg
          $ common_term)

(* --- sweep --- *)

(* The icost.sweep.v1 document: run manifest + settings + one curve
   object per axis, points in ascending value order.  CI smoke-validates
   this shape (sorted points, knee within the grid, manifest present). *)
let sweep_json ~bench ~variant ~cfg ~warmup ~measure (r : Sweep.result) =
  let point deltas (pt : Sweep.point) =
    match pt.Sweep.pt_outcome with
    | Ok cycles ->
      Json.Obj
        [ ("value", Json.Int pt.pt_value); ("cycles", Json.Float cycles);
          ("delta",
           Json.Float (Option.value ~default:0. (List.assoc_opt pt.pt_value deltas)));
        ]
    | Error exn ->
      Json.Obj
        [ ("value", Json.Int pt.pt_value);
          ("error", Json.Str (Printexc.to_string exn));
        ]
  in
  let curve (c : Sweep.curve) =
    Json.Obj
      ([ ("param", Json.Str c.Sweep.cv_param.Sparam.p_name);
         ("unit", Json.Str c.cv_param.Sparam.p_unit);
         ("base_value", Json.Int c.cv_base_value);
         ("points", Json.Arr (List.map (point c.cv_deltas) c.cv_points));
       ]
      @
      match c.cv_knee with
      | None -> []
      | Some k ->
        [ ("knee",
           Json.Obj
             [ ("value", Json.Int k.Sweep.kn_value);
               ("marginal", Json.Float k.kn_marginal);
               ("saturated", Json.Bool k.kn_saturated);
             ]);
        ])
  in
  let body =
    Json.Obj
      [ ("workload", Json.Str bench);
        ("variant", Json.Str (variant_name variant));
        ("engine", Json.Str (Sweep.engine_name r.Sweep.sw_engine));
        ("settings",
         Json.Obj [ ("warmup", Json.Int warmup); ("measure", Json.Int measure) ]);
        ("baseline", Json.Float r.sw_baseline);
        ("points", Json.Int r.sw_points);
        ("cache_hits", Json.Int r.sw_cache_hits);
        ("curves", Json.Arr (List.map curve r.sw_curves));
      ]
  in
  let m =
    Texport.manifest ~version ~config_digest:(Texport.digest cfg)
      ~seed:Icost_profiler.Sampler.default_opts.seed ~workloads:[ bench ] ()
  in
  (* splice the pre-rendered manifest into the encoded body object *)
  let rest = Json.encode body in
  Printf.sprintf "{\"schema\":\"icost.sweep.v1\",\"manifest\":%s,%s\n"
    (Texport.manifest_json m)
    (String.sub rest 1 (String.length rest - 1))

let sweep_csv (r : Sweep.result) =
  let b = Buffer.create 256 in
  Buffer.add_string b "param,value,cycles,delta\n";
  List.iter
    (fun (c : Sweep.curve) ->
      List.iter
        (fun (pt : Sweep.point) ->
          match pt.Sweep.pt_outcome with
          | Ok cycles ->
            Printf.bprintf b "%s,%d,%.17g,%.17g\n"
              c.Sweep.cv_param.Sparam.p_name pt.pt_value cycles
              (Option.value ~default:0.
                 (List.assoc_opt pt.pt_value c.cv_deltas))
          | Error _ -> ())
        c.cv_points)
    r.Sweep.sw_curves;
  Buffer.contents b

let sweep_cmd =
  let param_arg =
    let doc =
      "Axis grid spec, NAME=LO..HI (geometric doubling from LO, HI always \
       included) or NAME=LO..HI:STEP (arithmetic).  Repeatable; one \
       sensitivity curve per axis.  Known names: window, issue_width, \
       fetch_bw, commit_bw, dl1_lat, l2_lat, mem_lat, int_alu, int_mul, \
       fp_alu, fp_mul, mem_ports."
    in
    Arg.(value & opt_all string [] & info [ "p"; "param" ] ~docv:"SPEC" ~doc)
  in
  let knee_arg =
    let doc =
      "Saturation threshold: a relaxation step is past the knee when it \
       saves less than this fraction of the axis' best observed \
       cycles-per-unit."
    in
    Arg.(value & opt float Sweep.default_knee_frac
         & info [ "knee-frac" ] ~docv:"FRAC" ~doc)
  in
  let json_arg =
    let doc = "Emit the icost.sweep.v1 JSON document (embeds the run \
               manifest) instead of the table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let csv_arg =
    let doc = "Emit param,value,cycles,delta CSV instead of the table." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let run bench variant oracle params knee_frac json csv warmup measure telem =
    let cfg = config_of_variant variant in
    with_telemetry telem ~cfg ~benches:[ bench ] @@ fun () ->
    if json && csv then failwith "--json and --csv are mutually exclusive";
    let engine =
      match Sweep.engine_of_string (Runner.oracle_kind_name oracle) with
      | Ok e -> e
      | Error msg -> failwith msg
    in
    let axes =
      match Sparam.parse_axes params with
      | Ok axes -> axes
      | Error msg -> failwith msg
    in
    let s = settings ~warmup ~measure ~benches:(Some bench) in
    let p = Runner.prepare s (Workload.find_exn bench) in
    let r = Sweep.run ~knee_frac ~engine ~cfg ~prepared:p ~axes () in
    if json then
      print_string (sweep_json ~bench ~variant ~cfg ~warmup ~measure r)
    else if csv then print_string (sweep_csv r)
    else begin
      Printf.printf "%s on %s machine (%s engine), %.0f cycles baseline:\n"
        bench (variant_name variant)
        (Sweep.engine_name r.Sweep.sw_engine)
        r.Sweep.sw_baseline;
      print_string (Sweep.to_string r)
    end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Parametric sensitivity: evaluate a grid along machine-parameter \
          axes against one prepared execution, report d(cycles)/d(param) \
          curves, saturation knees and resize recommendations ranked by \
          cycles-per-unit ROI")
    Term.(const run $ bench_arg $ variant_arg $ oracle_arg $ param_arg
          $ knee_arg $ json_arg $ csv_arg $ warmup_arg $ measure_arg
          $ common_term)

(* --- stream --- *)

(* The icost.stream.v1 document: run manifest + totals + one telemetry
   object per segment, in segment order.  CI smoke-validates this shape
   (manifest present, segment count consistent, ids monotone). *)
let stream_json ~bench ~variant ~cfg ~warmup (r : Stream.result) =
  let seg (st : Stream.seg_stat) =
    Json.Obj
      [ ("id", Json.Int st.Stream.seg_id);
        ("start", Json.Int st.Stream.seg_start);
        ("len", Json.Int st.Stream.seg_len);
        ("cum_cycles", Json.Int st.Stream.cum_cycles);
        ("heap_words", Json.Int st.Stream.heap_words);
      ]
  in
  let o = Cost.memoize (Stream.oracle r) in
  let base = Cost.query o Category.Set.empty in
  let costs =
    List.map
      (fun c ->
        ( Category.name c,
          Json.Obj
            [ ("cost", Json.Float (Cost.cost o (Category.Set.singleton c)));
              ("percent",
               Json.Float
                 (if base > 0. then
                    100. *. Cost.cost o (Category.Set.singleton c) /. base
                  else 0.));
            ] ))
      Category.all
  in
  let body =
    Json.Obj
      [ ("workload", Json.Str bench);
        ("variant", Json.Str (variant_name variant));
        ("settings",
         Json.Obj
           [ ("warmup", Json.Int warmup);
             ("segment_insns", Json.Int r.Stream.segment_insns);
           ]);
        ("instructions", Json.Int r.Stream.instrs);
        ("cycles", Json.Int r.Stream.cycles);
        ("ipc",
         Json.Float
           (if r.Stream.cycles > 0 then
              float_of_int r.Stream.instrs /. float_of_int r.Stream.cycles
            else 0.));
        ("segments", Json.Int r.Stream.segments);
        ("peak_mb", Json.Float (Stream.peak_mb r));
        ("costs", Json.Obj costs);
        ("segment_stats", Json.Arr (List.map seg r.Stream.seg_stats));
      ]
  in
  let m =
    Texport.manifest ~version ~config_digest:(Texport.digest cfg)
      ~seed:Icost_profiler.Sampler.default_opts.seed ~workloads:[ bench ] ()
  in
  let rest = Json.encode body in
  Printf.sprintf "{\"schema\":\"icost.stream.v1\",\"manifest\":%s,%s\n"
    (Texport.manifest_json m)
    (String.sub rest 1 (String.length rest - 1))

let stream_cmd =
  let segment_arg =
    let doc = "Instructions per streamed segment (bounded-memory unit of \
               work)." in
    Arg.(value & opt int Stream.default_segment_insns
         & info [ "segment-insns" ] ~docv:"N" ~doc)
  in
  let max_insns_arg =
    let doc = "Instructions to analyze after warm-up.  Unlike the \
               monolithic commands, memory stays O(segment + window) \
               however large this is." in
    Arg.(value & opt int 1_000_000 & info [ "max-insns" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Emit the icost.stream.v1 JSON document (with run manifest) \
               instead of the table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run bench variant segment_insns max_insns warmup json telem =
    let cfg = config_of_variant variant in
    with_telemetry telem ~cfg ~benches:[ bench ] @@ fun () ->
    let w = Workload.find_exn bench in
    let src =
      Stream_source.of_program cfg (w.Workload.build ()) ~warmup
        ~max_insns
    in
    let r = Stream.analyze ~segment_insns cfg src in
    if json then print_string (stream_json ~bench ~variant ~cfg ~warmup r)
    else begin
      Printf.printf
        "%s (%s machine): %d instructions in %d cycles (IPC %.2f)\n" bench
        (variant_name variant) r.Stream.instrs r.Stream.cycles
        (if r.Stream.cycles > 0 then
           float_of_int r.Stream.instrs /. float_of_int r.Stream.cycles
         else 0.);
      Printf.printf
        "  %d segments of %d instructions, peak heap %.1f MB\n"
        r.Stream.segments r.Stream.segment_insns (Stream.peak_mb r);
      let o = Cost.memoize (Stream.oracle r) in
      let base = Cost.query o Category.Set.empty in
      List.iter
        (fun c ->
          let cost = Cost.cost o (Category.Set.singleton c) in
          Printf.printf "  %-8s cost %10.0f cycles (%5.1f%%)\n"
            (Category.name c) cost
            (if base > 0. then 100. *. cost /. base else 0.))
        Category.all
    end
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"Bounded-memory streaming analysis of arbitrarily long runs")
    Term.(const run $ bench_arg $ variant_arg $ segment_arg $ max_insns_arg
          $ warmup_arg $ json_arg $ common_term)

(* --- experiment --- *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id: fig1, table4a, table4b, table4c, fig3, table7, \
               profstats, ablation, prefetch, advisor, or all." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let run id benches warmup measure telem =
    let s = settings ~warmup ~measure ~benches in
    let failed =
      with_telemetry telem ~cfg:Config.default ~benches:s.Runner.benches
      @@ fun () ->
      let reports =
      match id with
      | "all" -> Drive.all_reports ~settings:s ()
      | id ->
        let prepared = Runner.prepare_all s in
        let t7 =
          match benches with
          | Some _ -> prepared
          | None ->
            List.filter
              (fun (p : Runner.prepared) ->
                List.mem p.name Icost_experiments.Exp_table7.default_benches)
              prepared
        in
        (match id with
         | "fig1" -> [ Drive.fig1 prepared ]
         | "table4a" -> [ Drive.table4a prepared ]
         | "table4b" -> [ Drive.table4b prepared ]
         | "table4c" -> [ Drive.table4c prepared ]
         | "fig3" -> [ Drive.fig3 prepared ]
         | "table7" -> [ Drive.table7 t7 ]
         | "profstats" -> [ Drive.profstats t7 ]
         | "ablation" -> [ Drive.ablation t7 ]
         | "prefetch" -> [ Drive.prefetch ~settings:s () ]
         | "conclusion" -> [ Drive.conclusion ~settings:s () ]
         | "advisor" -> [ Drive.advisor prepared ]
         | other -> failwith (Printf.sprintf "unknown experiment %S" other))
      in
      List.iter Drive.print_report reports;
      Drive.failed_checks reports
    in
    (* a failing shape check is a failing run: give CI an exit status to
       gate on instead of PASS/FAIL prose buried in the report body *)
    if failed <> [] then begin
      Printf.eprintf "%d shape check(s) failed:\n" (List.length failed);
      List.iter (fun (id, d) -> Printf.eprintf "  [%s] %s\n" id d) failed;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a paper table or figure")
    Term.(const run $ id_arg $ benches_arg $ warmup_arg $ measure_arg $ common_term)

(* --- serve --- *)

let socket_arg =
  let doc = "Unix domain socket path the daemon listens on / is queried at." in
  Arg.(value & opt string "icostd.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let parse_tcp_exn spec =
  match Endpoint.parse_tcp spec with
  | Ok hp -> hp
  | Error msg -> failwith msg

let serve_cmd =
  let workers_arg =
    let doc = "Concurrent analysis requests (scheduler worker threads)." in
    Arg.(value & opt int Server.default_opts.workers & info [ "workers" ] ~doc)
  in
  let tcp_arg =
    let doc =
      "Also listen on a TCP endpoint, e.g. 127.0.0.1:7433 (port 0 binds an \
       ephemeral port, printed on stderr).  The Unix socket stays on."
    in
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)
  in
  let shards_arg =
    let doc =
      "Fan the service across N worker processes (a shard router): sessions \
       are hashed to shards, each with its own caches, scheduler, breaker \
       and snapshot subdirectory.  1 (default) serves in-process."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Accepted-but-not-running request bound; a full queue answers \
       'overloaded' instead of buffering without limit."
    in
    Arg.(value & opt int Server.default_opts.queue_limit
         & info [ "queue-limit" ] ~doc)
  in
  let cache_arg =
    let doc = "Maximum entries per session-cache layer (LRU eviction)." in
    Arg.(value & opt int Server.default_opts.cache_cap & info [ "cache-cap" ] ~doc)
  in
  let faults_arg =
    let doc =
      "Arm deterministic fault injection, e.g. \
       'write_short:0.2,worker_raise:0.05;seed=42' (see doc/protocol.md \
       for the point list and grammar).  Overrides ICOST_FAULTS."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let run socket tcp_spec shards workers queue_limit cache_cap cache_dir
      faults telem =
    (match faults with
     | Some spec -> Icost_util.Fault.configure_exn spec
     | None ->
       (match Icost_util.Fault.from_env () with
        | Ok () -> ()
        | Error msg -> failwith ("ICOST_FAULTS: " ^ msg)));
    let tcp = Option.map parse_tcp_exn tcp_spec in
    if shards < 1 then failwith "--shards must be >= 1";
    let stats = ref None in
    let on_ready () =
      Printf.eprintf "icostd %s listening on %s (%d worker(s)%s)\n%!" version
        socket workers
        (if shards > 1 then Printf.sprintf " x %d shards" shards else "")
    in
    let on_tcp_port p = Printf.eprintf "icostd tcp port %d\n%!" p in
    with_telemetry telem ~cfg:Config.default ~benches:[]
      ~service_stats:(fun () -> !stats)
    @@ fun () ->
    let uptime_s, requests_total =
      if shards <= 1 then begin
        let s =
          Server.run
            {
              Server.socket;
              tcp;
              workers;
              queue_limit;
              cache_cap;
              breaker_threshold = Server.default_opts.breaker_threshold;
              breaker_cooldown = Server.default_opts.breaker_cooldown;
              mem_high_mb = Server.default_opts.mem_high_mb;
              cache_dir;
              handle_signals = true;
              on_ready = Some on_ready;
              on_tcp_port = Some on_tcp_port;
            }
        in
        stats := Some (s.uptime_s, s.requests_total);
        (s.uptime_s, s.requests_total)
      end
      else begin
        let s =
          Router.run
            {
              Router.socket;
              tcp;
              shards;
              shard =
                { Server.default_opts with workers; queue_limit; cache_cap;
                  cache_dir };
              supervise = Router.default_opts.supervise;
              failover_budget_s = Router.default_opts.failover_budget_s;
              handle_signals = true;
              on_ready = Some on_ready;
              on_tcp_port = Some on_tcp_port;
            }
        in
        stats := Some (s.uptime_s, s.requests_total);
        (s.uptime_s, s.requests_total)
      end
    in
    Printf.eprintf "icostd served %d request(s) over %.1f s\n%!" requests_total
      uptime_s
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Resident analysis daemon: answers icost.rpc.v1 queries over a \
             Unix socket (and optionally TCP), caching prepared workloads \
             across requests; --shards fans it across worker processes")
    Term.(const run $ socket_arg $ tcp_arg $ shards_arg $ workers_arg
          $ queue_arg $ cache_arg $ cache_dir_arg $ faults_arg $ common_term)

(* --- query --- *)

let query_cmd =
  let op_arg =
    let doc =
      "Request type: breakdown, icost, graph-stats, sweep, status, health, \
       drain (rolling restart of a sharded daemon) or shutdown."
    in
    Arg.(value & pos 0 string "status" & info [] ~docv:"OP" ~doc)
  in
  let variant_str_arg =
    let doc = "Machine variant: base, dl1, wakeup or bmisp." in
    Arg.(value & opt string "base" & info [ "variant" ] ~doc)
  in
  let engine_arg =
    let doc = "Cost engine: graph, multisim, profiler or stream \
               (segmented bounded-memory re-analysis, bit-identical to \
               graph on the same window)." in
    Arg.(value & opt string "graph" & info [ "oracle"; "engine" ] ~doc)
  in
  let sets_arg =
    let doc = "Category set for op icost (repeatable)." in
    Arg.(value & opt_all string [ "dl1,win" ] & info [ "s"; "set" ] ~docv:"CATS" ~doc)
  in
  let focus_arg =
    let doc = "Focus category for op breakdown." in
    Arg.(value & opt string "dl1" & info [ "focus" ] ~doc)
  in
  let params_arg =
    let doc = "Axis grid spec for op sweep, e.g. window=16..256:16 \
               (repeatable; see `icost sweep`)." in
    Arg.(value & opt_all string [] & info [ "param" ] ~docv:"SPEC" ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline in milliseconds (server-side)." in
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~doc)
  in
  let wait_arg =
    let doc = "Seconds to keep retrying the initial connection." in
    Arg.(value & opt float 5. & info [ "wait" ] ~doc)
  in
  let tcp_arg =
    let doc =
      "Query over TCP (HOST:PORT) instead of the Unix socket."
    in
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)
  in
  let batch_arg =
    let doc =
      "Send the operation N times in one batch frame (one request line, one \
       reply line, per-item results).  Exercises the wire batch path; \
       status/health/shutdown refuse batching > 1."
    in
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc =
      "Max automatic re-sends on transient failures (overloaded, \
       unavailable, internal, dropped connection).  Only idempotent \
       requests are retried; shutdown never is."
    in
    Arg.(value & opt int Client.default_retry_opts.retries
         & info [ "retries" ] ~doc)
  in
  let budget_arg =
    let doc = "Wall-clock retry budget in milliseconds." in
    Arg.(value & opt int Client.default_retry_opts.budget_ms
         & info [ "retry-budget-ms" ] ~doc)
  in
  let run socket tcp_spec op bench variant engine sets focus params warmup
      measure seed deadline_ms wait batch retries budget_ms telem =
    Option.iter Icost_util.Pool.set_jobs telem.jobs;
    let target =
      {
        Protocol.workload = bench;
        variant;
        engine;
        warmup;
        measure;
        seed;
      }
    in
    let op =
      match op with
      | "breakdown" -> Protocol.Breakdown { target; focus }
      | "icost" -> Protocol.Icost { target; sets }
      | "graph-stats" -> Protocol.Graph_stats { target }
      | "sweep" -> Protocol.Sweep { target; params }
      | "status" -> Protocol.Status
      | "health" -> Protocol.Health
      | "drain" -> Protocol.Drain
      | "shutdown" -> Protocol.Shutdown
      | other -> failwith (Printf.sprintf "unknown op %S" other)
    in
    if batch < 1 then failwith "--batch must be >= 1";
    let op =
      if batch = 1 then op
      else
        match op with
        | Protocol.Shutdown | Protocol.Drain | Protocol.Batch _ ->
          failwith "this op cannot be batched"
        | _ -> Protocol.Batch { ops = List.init batch (fun _ -> op) }
    in
    let addr =
      match tcp_spec with
      | Some spec ->
        let host, port = parse_tcp_exn spec in
        Endpoint.Tcp (host, port)
      | None -> Endpoint.Unix_path socket
    in
    let reply =
      let opts = { Client.default_retry_opts with retries; budget_ms } in
      let s = Client.connect_session_addr ~opts ~retry_for:wait addr in
      Fun.protect
        ~finally:(fun () -> Client.close_session s)
        (fun () ->
          Client.call_with_retry s { Protocol.req_id = 1; deadline_ms; op })
    in
    let rec print_body = function
      | Protocol.R_breakdown { baseline; rows } ->
        Printf.printf "%s on %s machine (%s oracle), %.0f cycles baseline:\n"
          bench variant engine baseline;
        List.iter
          (fun (r : Protocol.breakdown_row) ->
            Printf.printf "  %-12s %7.1f%%\n" r.row_label r.row_percent)
          rows;
        Printf.printf "  %-12s %7.1f%%\n" "Total"
          (List.fold_left (fun acc (r : Protocol.breakdown_row) ->
               acc +. r.row_percent) 0. rows)
      | Protocol.R_icost { baseline; rows } ->
        Printf.printf "%s: baseline %.0f cycles\n" bench baseline;
        List.iter
          (fun (r : Protocol.icost_row) ->
            Printf.printf
              "  %-24s cost %8.0f cycles (%5.1f%%)  icost %+8.0f (%s)\n"
              r.set_name r.set_cost
              (100. *. r.set_cost /. baseline)
              r.set_icost r.set_class)
          rows
      | Protocol.R_graph_stats { instrs; nodes; edges; critical_path } ->
        Printf.printf "%s: %d instructions, %d nodes, %d edges, CP %d cycles\n"
          bench instrs nodes edges critical_path
      | Protocol.R_sweep { baseline; curves } ->
        Printf.printf "%s: baseline %.0f cycles\n" bench baseline;
        List.iter
          (fun (c : Protocol.sweep_curve) ->
            Printf.printf "  %s (base %d):\n" c.curve_param c.curve_base;
            List.iter
              (fun (p : Protocol.sweep_point) ->
                match p.sp_outcome with
                | Ok (cycles, delta) ->
                  Printf.printf "    %6d  %10.0f cycles  d %+9.2f%s\n"
                    p.sp_value cycles delta
                    (if p.sp_value = c.curve_base then "  *base*" else "")
                | Error (code, msg) ->
                  Printf.printf "    %6d  error (%s): %s\n" p.sp_value
                    (Protocol.error_code_name code) msg)
              c.curve_points;
            Option.iter
              (fun (k : Protocol.sweep_knee) ->
                Printf.printf "    knee at %d (%.2f cycles/unit%s)\n"
                  k.kn_value k.kn_marginal
                  (if k.kn_saturated then ""
                   else ", still paying off at the grid edge"))
              c.curve_knee)
          curves
      | Protocol.R_status s ->
        Printf.printf
          "uptime %.1f s, %d request(s), %d running, queue %d, %d session(s)\n\
           cache: %d hit(s), %d miss(es), %d eviction(s); snapshot: %d \
           hit(s), %d miss(es), %d reject(s); sweep: %d point(s), %d \
           cached; stream: %d segment(s), peak %.1f MB; %d pool job(s); \
           %shealth %s%s\n"
          s.uptime_s s.requests_total s.inflight s.queue_depth s.sessions
          s.cache_hits s.cache_misses s.cache_evictions s.snapshot_hits
          s.snapshot_misses s.snapshot_rejects s.sweep_points
          s.sweep_cache_hits s.segments s.stream_peak_mb s.pool_jobs
          (if s.shards > 0 then
             Printf.sprintf "%d shard(s), %d respawn(s), %d failover(s); "
               s.shards s.respawns s.failovers
           else "")
          s.health
          (if s.draining then "; draining" else "")
      | Protocol.R_health h ->
        Printf.printf "health %s; %d breaker(s) open; %d entr(ies) shed\n"
          h.h_health h.h_breakers_open h.h_shed
      | Protocol.R_shutdown -> Printf.printf "server is shutting down\n"
      | Protocol.R_drain { restarted } ->
        Printf.printf "rolling restart complete: %d shard(s) cycled\n"
          restarted
      | Protocol.R_batch { results } ->
        let n = List.length results in
        let failed = ref 0 in
        List.iteri
          (fun i item ->
            Printf.printf "[%d/%d] " (i + 1) n;
            match item with
            | Ok body -> print_body body
            | Error (code, msg) ->
              incr failed;
              Printf.printf "error (%s): %s\n"
                (Protocol.error_code_name code) msg)
          results;
        if !failed > 0 then begin
          Printf.eprintf "%d of %d batch item(s) failed\n" !failed n;
          exit 3
        end
    in
    match reply.Protocol.body with
    | Error (code, msg) ->
      Printf.eprintf "error (%s): %s\n" (Protocol.error_code_name code) msg;
      exit 3
    | Ok body -> print_body body
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send one icost.rpc.v1 request to a running 'icost serve' daemon")
    Term.(const run $ socket_arg $ tcp_arg $ op_arg $ bench_arg
          $ variant_str_arg $ engine_arg $ sets_arg $ focus_arg $ params_arg
          $ warmup_arg $ measure_arg $ seed_arg $ deadline_arg $ wait_arg
          $ batch_arg $ retries_arg $ budget_arg $ common_term)

(* --- check: cross-engine conformance --- *)

let check_cmd =
  let budget_arg =
    let doc = "Wall-clock budget in seconds; cases that would start after \
               the deadline are skipped (and reported)." in
    Arg.(value & opt float Harness.default_opts.budget_s
         & info [ "budget-s" ] ~docv:"SECONDS" ~doc)
  in
  let gen_arg =
    let doc = "Generated (fuzzed) cases per workload profile \
               (mixed/loop/alias/branch)." in
    Arg.(value & opt int Harness.default_opts.gen_per_profile
         & info [ "gen-cases" ] ~docv:"N" ~doc)
  in
  let laws_arg =
    let doc = "Comma-separated law ids or family names (e.g. 'streaming') \
               to evaluate (default: the whole table; see --list-laws)." in
    Arg.(value & opt (some string) None & info [ "laws" ] ~docv:"IDS" ~doc)
  in
  let list_laws_arg =
    let doc = "Print the law table (id, family, tolerance, statement) and \
               exit." in
    Arg.(value & flag & info [ "list-laws" ] ~doc)
  in
  let artifact_arg =
    let doc = "Directory for counterexample artifacts (created if needed); \
               every violation is shrunk and written there as replayable \
               JSON." in
    Arg.(value & opt (some string) None
         & info [ "artifact-dir" ] ~docv:"DIR" ~doc)
  in
  let replay_arg =
    let doc = "Replay a counterexample artifact and require the recorded \
               violation to reproduce bit-identically." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let faults_arg =
    let doc = "Arm deterministic fault injection (e.g. \
               'check.perturb_graph;seed=1' for a deliberate law \
               violation).  Overrides ICOST_FAULTS." in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let check_warmup_arg =
    let doc = "Warm-up instructions per case (caches and predictors train, \
               not timed)." in
    Arg.(value & opt int Harness.default_opts.warmup & info [ "warmup" ] ~doc)
  in
  let check_measure_arg =
    let doc = "Measured instructions per case." in
    Arg.(value & opt int Harness.default_opts.measure
         & info [ "n"; "measure" ] ~doc)
  in
  let run seed budget_s benches gen_per_profile warmup measure laws list_laws
      artifact_dir replay faults telem =
    let code =
      if list_laws then begin
        Printf.printf "%-24s %-13s %-20s %s\n" "law" "family" "tolerance"
          "statement";
        List.iter
          (fun (l : Laws.law) ->
            Printf.printf "%-24s %-13s %-20s %s\n" l.Laws.id
              (Laws.family_name l.Laws.family)
              (Laws.tolerance_to_string l.Laws.tol)
              l.Laws.doc)
          Laws.all;
        0
      end
      else begin
        (match faults with
        | Some spec -> Icost_util.Fault.configure_exn spec
        | None -> (
          match Icost_util.Fault.from_env () with
          | Ok () -> ()
          | Error msg -> failwith ("ICOST_FAULTS: " ^ msg)));
        match replay with
        | Some file ->
          with_telemetry telem ~cfg:Config.default ~benches:[] @@ fun () ->
          (match Harness.replay file with
          | Ok msg ->
            Printf.printf "%s\n" msg;
            0
          | Error msg ->
            Printf.eprintf "replay failed: %s\n" msg;
            1)
        | None ->
          let only =
            Option.map
              (fun s ->
                String.split_on_char ',' s |> List.map String.trim
                |> List.concat_map (fun tok ->
                       if Laws.find tok <> None then [ tok ]
                       else
                         match
                           List.filter
                             (fun (l : Laws.law) ->
                               Laws.family_name l.Laws.family = tok)
                             Laws.all
                         with
                         | [] ->
                           failwith
                             (Printf.sprintf
                                "unknown law or family %S (see --list-laws)"
                                tok)
                         | ls -> List.map (fun (l : Laws.law) -> l.Laws.id) ls))
              laws
          in
          let benches =
            match benches with
            | None -> []
            | Some s -> String.split_on_char ',' s |> List.map String.trim
          in
          let opts =
            {
              Harness.master_seed = seed;
              budget_s;
              benches;
              gen_per_profile;
              warmup;
              measure;
              only;
              artifact_dir;
            }
          in
          with_telemetry telem ~cfg:Config.default
            ~benches:
              (List.map
                 (fun (c : Icost_check.Case.t) -> Icost_check.Case.name c)
                 (Harness.cases_of_opts opts))
          @@ fun () ->
          let summary = Harness.run opts in
          print_string (Harness.render summary);
          if Harness.ok summary then 0 else 1
      end
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check the three cost engines against the conformance law table \
          (algebraic icost identities, metamorphic config laws, \
          differential engine agreement) on registry kernels and seeded \
          random programs; violations are shrunk to minimal replayable \
          counterexamples")
    Term.(
      const run $ seed_arg $ budget_arg $ benches_arg $ gen_arg
      $ check_warmup_arg $ check_measure_arg $ laws_arg $ list_laws_arg
      $ artifact_arg $ replay_arg $ faults_arg $ common_term)

let () =
  let info =
    Cmd.info "icost" ~version
      ~doc:"Interaction-cost bottleneck analysis (Fields et al., MICRO-36 2003)"
  in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; breakdown_cmd; icost_cmd; graph_cmd; advise_cmd;
         sweep_cmd; stream_cmd; experiment_cmd; check_cmd; serve_cmd;
         query_cmd ]))
